(** An island-model GA: N independent {!Engine} populations with
    periodic deterministic migration on a seeded ring.

    The batch-parallel strategies in {!Engine.eval_strategy} only fan
    out {e evaluation}; breeding stays serial and every generation pays
    a pool fan-out/fan-in.  The island model shards the population
    instead: each island runs the whole GA loop — breeding {e and}
    evaluation — locally, and the pool schedules islands, not
    evaluations, so domains synchronise only at migration epochs.

    {2 Determinism}

    The trajectory is a function of (seed, topology, problem) alone:

    - island [i] consumes only its own PRNG stream,
      [Prng.stream rng i], so islands never race for randomness;
      stream 0 is the run seed's own state, which is why a 1-island run
      is bit-identical to {!Engine.run};
    - the ring is a seed-derived permutation (stream [n], which no
      island uses), fixed for the whole run and carried in the
      {!checkpoint};
    - every [migration_interval] generations all islands stand at the
      same generation-boundary target, and migration is plain array
      surgery applied in island index order on the owner domain:
      island [ring.(p)] sends copies of its [migration_count] best
      members to island [ring.((p+1) mod n)], where they replace the
      worst residents ({!Engine.inject}).

    Hence equal seeds give bit-identical results at any [--jobs] value,
    with the serial fallback, and across checkpoint/resume. *)

type topology = {
  islands : int;  (** Number of islands, >= 1. *)
  migration_interval : int;
      (** Generations between migration epochs (clamped to >= 1). *)
  migration_count : int;
      (** Members each island exports per epoch (clamped to
          [\[0, population_size\]]; 0 disables migration). *)
}

val default_topology : topology
(** One island (no sharding, no migration), interval 8, count 2 — the
    interval/count defaults used when [--islands] is raised. *)

type checkpoint = {
  ring : int array;
      (** The seed-derived ring permutation; position [p] holds an
          island index and sends to position [(p+1) mod n].  Stored
          because the run seed is not available on resume. *)
  members : Engine.checkpoint array;
      (** Per-island engine state (population, best, stagnation,
          history, PRNG word), indexed by island. *)
}
(** Captured at an epoch boundary, after migration: every island is at
    a generation boundary with migrants already merged, so a resumed
    run re-enters exactly where the original left off. *)

type 'info result = {
  best : 'info Engine.result;
      (** The winning island's result (lowest best fitness, ties to the
          lowest island index). *)
  per_island : 'info Engine.result array;
  generations : int;  (** Summed across islands (total work, not wall). *)
  evaluations : int;  (** Summed across islands. *)
  cache_hits : int;  (** Summed across islands. *)
}

val run :
  ?config:Engine.config ->
  ?topology:topology ->
  ?pool:Mm_parallel.Pool.t ->
  ?cache_capacity:int ->
  ?delta:'info Engine.delta ->
  ?on_epoch:(checkpoint -> unit) ->
  ?resume:checkpoint ->
  rng:Mm_util.Prng.t ->
  'info Engine.problem ->
  'info result
(** Run the island model to completion: epochs advance every island to
    the next common generation-boundary target (a multiple of
    [migration_interval], capped at [max_generations]), then migrate,
    until every island has finished ({!Engine.finished}; a migrant that
    revives a converged island keeps it running).

    [pool] schedules one island per domain slot and round-robins when
    there are more islands than domains (a warning is printed on
    stderr, mirroring the CLI oversubscription warning).  The pool must
    not use retry/timeout fault tolerance — island stepping is not
    idempotent; {!Mm_parallel.Pool.default_config} is safe.  Without a
    pool (or with a 1-domain pool) islands are stepped serially in
    index order — bit-identical, just not parallel.

    [cache_capacity > 0] gives every island a {e private}
    {!Mm_parallel.Memo.adaptive} cache of that capacity (a shared cache
    would be a cross-domain race; privacy also keeps lookups
    deterministic per island).

    [on_epoch] fires after every migration with a {!checkpoint} of the
    whole archipelago (copies; the callback may retain them).

    [resume] rebuilds every island from its checkpointed state — each
    island's ['info] side data is recovered by one re-evaluation batch,
    with the same fitness-verification contract as {!Engine.run} — and
    continues bit-identically to the uninterrupted run.  The caller's
    [rng] is superseded.  Raises [Invalid_argument] when the checkpoint
    does not fit (wrong island count, ring size, or any per-island
    mismatch {!Engine.init} would reject). *)
