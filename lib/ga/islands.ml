module Prng = Mm_util.Prng
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Metrics = Mm_obs.Metrics

let p_epoch = Mm_obs.Probe.create "islands/epoch"
let m_epochs = Metrics.counter "islands/epochs"
let m_migrants = Metrics.counter "islands/migrants"

type topology = { islands : int; migration_interval : int; migration_count : int }

let default_topology = { islands = 1; migration_interval = 8; migration_count = 2 }

type checkpoint = { ring : int array; members : Engine.checkpoint array }

type 'info result = {
  best : 'info Engine.result;
  per_island : 'info Engine.result array;
  generations : int;
  evaluations : int;
  cache_hits : int;
}

(* One island = one Engine.state stepped to successive epoch boundaries.
   All randomness an island ever consumes comes from its own stream
   ([Prng.stream rng i] at the start, or its checkpointed word on
   resume), and migration is plain deterministic array surgery applied
   island-by-island in index order on the owner domain — so the
   trajectory is a function of (seed, topology, problem) alone, never
   of the domain count or the schedule. *)

let run ?(config = Engine.default_config) ?(topology = default_topology) ?pool
    ?(cache_capacity = 0) ?delta ?on_epoch ?resume ~rng problem =
  let n = topology.islands in
  if n < 1 then invalid_arg "Islands.run: need at least one island";
  let interval = max 1 topology.migration_interval in
  let count = max 0 (min topology.migration_count config.population_size) in
  (* Each island breeds and evaluates locally — Serial, optionally
     through a private memo cache.  The pool never sees individual
     evaluations; it schedules whole islands, so the per-generation
     batch fan-out/fan-in disappears from the hot path. *)
  let strategy () =
    if cache_capacity > 0 then Engine.Cached (Memo.adaptive ~capacity:cache_capacity)
    else Engine.Serial
  in
  let ring, states =
    match resume with
    | Some (ck : checkpoint) ->
      if Array.length ck.members <> n then
        invalid_arg "Islands.run: checkpoint island count mismatch";
      if Array.length ck.ring <> n then
        invalid_arg "Islands.run: checkpoint ring size mismatch";
      (* Each island's stream continues from its checkpointed word; the
         caller's [rng] is superseded, exactly as in [Engine.run]. *)
      ( Array.copy ck.ring,
        Array.map
          (fun (eck : Engine.checkpoint) ->
            Engine.init ~config ~strategy:(strategy ()) ?delta ~resume:eck
              ~rng:(Prng.of_state eck.rng_state) problem)
          ck.members )
    | None ->
      (* Island [i] draws from the [i]-th child stream of the run seed;
         stream 0 is the seed's own state, so a single island is
         bit-identical to [Engine.run] with the same [rng].  The ring
         permutation comes from stream [n] — a stream no island uses. *)
      let ring = Array.init n (fun i -> i) in
      if n > 1 then Prng.shuffle (Prng.stream rng n) ring;
      ( ring,
        Array.init n (fun i ->
            Engine.init ~config ~strategy:(strategy ()) ?delta
              ~rng:(Prng.stream rng i) problem) )
  in
  (match pool with
  | Some p when n > Pool.size p ->
    (* Mirrors the CLI oversubscription warning: more islands than
       domains is legal — the pool round-robins several islands per
       domain slot — it just will not speed things up further. *)
    Printf.eprintf
      "warning: %d islands across %d pool domain%s; islands will share domain slots\n%!"
      n (Pool.size p)
      (if Pool.size p = 1 then "" else "s")
  | _ -> ());
  let max_generation () =
    Array.fold_left (fun acc st -> max acc (Engine.generation st)) 0 states
  in
  let unfinished () =
    Array.exists (fun st -> not (Engine.finished st)) states
  in
  let advance target =
    let todo = ref [] in
    Array.iteri
      (fun i st -> if not (Engine.finished st) then todo := i :: !todo)
      states;
    let todo = Array.of_list (List.rev !todo) in
    match pool with
    | Some p when Array.length todo > 1 && Pool.size p > 1 ->
      (* Island stepping is NOT idempotent, so the pool must not retry
         or abandon these jobs; pools built with [default_config] (no
         retries, no timeout) satisfy that.  Each job touches only its
         own island's state, and the batch barrier publishes the
         mutations back to the owner. *)
      ignore
        (Pool.map p
           (fun i ->
             Engine.step states.(i) ~until:target;
             i)
           todo)
    | _ -> Array.iter (fun i -> Engine.step states.(i) ~until:target) todo
  in
  (* Deterministic ring migration, applied in island index order on the
     owner domain: island [ring.(p)] exports copies of its [count] best
     members to island [ring.((p+1) mod n)].  Exports are all taken
     before any injection, so migration is order-independent — the same
     individuals move regardless of how islands are numbered on the
     ring. *)
  let migrate () =
    if n > 1 && count > 0 then begin
      let exports = Array.map (fun st -> Engine.best_members st count) states in
      let incoming = Array.make n [] in
      Array.iteri
        (fun p island -> incoming.(ring.((p + 1) mod n)) <- exports.(island))
        ring;
      Array.iteri (fun i st -> Engine.inject st incoming.(i)) states;
      Metrics.incr ~by:(n * count) m_migrants
    end
  in
  let capture () =
    { ring = Array.copy ring; members = Array.map Engine.to_checkpoint states }
  in
  while unfinished () do
    let target =
      min config.max_generations (((max_generation () / interval) + 1) * interval)
    in
    Mm_obs.Probe.run
      ~args:(fun () ->
        [ ("target", string_of_int target); ("islands", string_of_int n) ])
      p_epoch
    @@ fun () ->
    advance target;
    migrate ();
    Metrics.incr m_epochs;
    (* The epoch boundary after migration is the island run's checkpoint
       point: every island is at a generation boundary and the migrants
       are already in place, so a resume re-enters exactly here. *)
    match on_epoch with None -> () | Some emit -> emit (capture ())
  done;
  let per_island = Array.map Engine.to_result states in
  let best_i = ref 0 in
  Array.iteri
    (fun i (r : _ Engine.result) ->
      (* Strict < with ties to the lowest island index. *)
      if r.best_fitness < per_island.(!best_i).best_fitness then best_i := i)
    per_island;
  {
    best = per_island.(!best_i);
    per_island;
    generations =
      Array.fold_left (fun acc (r : _ Engine.result) -> acc + r.generations) 0 per_island;
    evaluations =
      Array.fold_left (fun acc (r : _ Engine.result) -> acc + r.evaluations) 0 per_island;
    cache_hits =
      Array.fold_left (fun acc (r : _ Engine.result) -> acc + r.cache_hits) 0 per_island;
  }
