module Prng = Mm_util.Prng

let random rng ~counts = Array.map (fun c -> Prng.int rng c) counts

let validate ~counts genome =
  Array.length genome = Array.length counts
  && Array.for_all2 (fun g c -> g >= 0 && g < c) genome counts

let two_point_crossover rng a b =
  let n = Array.length a in
  if n <> Array.length b then invalid_arg "Genome.two_point_crossover: length mismatch";
  if n = 0 then invalid_arg "Genome.two_point_crossover: empty genome";
  let p = Prng.int rng n and q = Prng.int rng n in
  let lo = min p q and hi = max p q in
  let child_a = Array.copy a and child_b = Array.copy b in
  for i = lo to hi do
    child_a.(i) <- b.(i);
    child_b.(i) <- a.(i)
  done;
  (child_a, child_b)

let point_mutate rng ~counts ~rate genome =
  Array.iteri
    (fun i _ -> if Prng.chance rng rate then genome.(i) <- Prng.int rng counts.(i))
    genome

let point_mutate_tracked rng ~counts ~rate genome =
  (* Same RNG stream as [point_mutate]: a draw per position plus one per
     hit, in position order. *)
  let touched = ref [] in
  Array.iteri
    (fun i _ ->
      if Prng.chance rng rate then begin
        let v = Prng.int rng counts.(i) in
        if v <> genome.(i) then touched := i :: !touched;
        genome.(i) <- v
      end)
    genome;
  List.rev !touched

let diff a b =
  if Array.length a <> Array.length b then invalid_arg "Genome.diff: length mismatch";
  let d = ref [] in
  for i = Array.length a - 1 downto 0 do
    if a.(i) <> b.(i) then d := i :: !d
  done;
  !d

let hamming a b =
  if Array.length a <> Array.length b then invalid_arg "Genome.hamming: length mismatch";
  let d = ref 0 in
  Array.iteri (fun i x -> if x <> b.(i) then incr d) a;
  !d
