module Prng = Mm_util.Prng

type config = {
  population_size : int;
  max_generations : int;
  crossover_rate : float;
  mutation_rate : float;
}

let default_config =
  { population_size = 60; max_generations = 80; crossover_rate = 0.9; mutation_rate = 0.02 }

type 'info individual = {
  genome : int array;
  objectives : float array;
  info : 'info;
}

type 'info problem = {
  gene_counts : int array;
  n_objectives : int;
  evaluate : int array -> float array * 'info;
  initial : int array list;
}

type 'info result = {
  front : 'info individual list;
  generations : int;
  evaluations : int;
}

let dominates a b =
  let n = Array.length a in
  let rec scan i strictly =
    if i >= n then strictly
    else if a.(i) > b.(i) then false
    else scan (i + 1) (strictly || a.(i) < b.(i))
  in
  Array.length b = n && scan 0 false

(* Fast non-dominated sort (Deb et al.): O(M·N²). *)
let non_dominated_sort objectives =
  let n = Array.length objectives in
  let rank = Array.make n (-1) in
  let dominated_by = Array.make n [] in
  let domination_count = Array.make n 0 in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if p <> q then
        if dominates objectives.(p) objectives.(q) then
          dominated_by.(p) <- q :: dominated_by.(p)
        else if dominates objectives.(q) objectives.(p) then
          domination_count.(p) <- domination_count.(p) + 1
    done
  done;
  let current = ref [] in
  for p = 0 to n - 1 do
    if domination_count.(p) = 0 then begin
      rank.(p) <- 0;
      current := p :: !current
    end
  done;
  let front_index = ref 0 in
  while !current <> [] do
    let next = ref [] in
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            domination_count.(q) <- domination_count.(q) - 1;
            if domination_count.(q) = 0 then begin
              rank.(q) <- !front_index + 1;
              next := q :: !next
            end)
          dominated_by.(p))
      !current;
    incr front_index;
    current := !next
  done;
  rank

let crowding_distances objectives front =
  let members = Array.of_list front in
  let m = Array.length members in
  let distance = Array.make m 0.0 in
  if m > 0 then begin
    let n_objectives = Array.length objectives.(members.(0)) in
    for objective = 0 to n_objectives - 1 do
      let order = Array.init m Fun.id in
      Array.sort
        (fun a b -> compare objectives.(members.(a)).(objective) objectives.(members.(b)).(objective))
        order;
      let lo = objectives.(members.(order.(0))).(objective) in
      let hi = objectives.(members.(order.(m - 1))).(objective) in
      distance.(order.(0)) <- infinity;
      distance.(order.(m - 1)) <- infinity;
      let span = hi -. lo in
      if span > 0.0 then
        for k = 1 to m - 2 do
          let prev = objectives.(members.(order.(k - 1))).(objective) in
          let next = objectives.(members.(order.(k + 1))).(objective) in
          distance.(order.(k)) <- distance.(order.(k)) +. ((next -. prev) /. span)
        done
    done
  end;
  distance

let run ?(config = default_config) ~rng problem =
  if Array.length problem.gene_counts = 0 then invalid_arg "Nsga2.run: empty genome";
  if problem.n_objectives <= 0 then invalid_arg "Nsga2.run: need objectives";
  if config.population_size < 4 then invalid_arg "Nsga2.run: population too small";
  let evaluations = ref 0 in
  let eval genome =
    incr evaluations;
    let objectives, info = problem.evaluate genome in
    if Array.length objectives <> problem.n_objectives then
      invalid_arg "Nsga2.run: objective arity mismatch";
    { genome; objectives; info }
  in
  let seeded = Array.of_list problem.initial in
  let population =
    ref
      (Array.init config.population_size (fun i ->
           if i < Array.length seeded then eval (Array.copy seeded.(i))
           else eval (Genome.random rng ~counts:problem.gene_counts)))
  in
  (* Rank + crowding for the current population; returns a comparison
     key per individual. *)
  let keys_of members =
    let objectives = Array.map (fun m -> m.objectives) members in
    let rank = non_dominated_sort objectives in
    let crowding = Array.make (Array.length members) 0.0 in
    let by_front = Hashtbl.create 8 in
    Array.iteri
      (fun i r ->
        Hashtbl.replace by_front r (i :: Option.value ~default:[] (Hashtbl.find_opt by_front r)))
      rank;
    Hashtbl.iter
      (fun _ front ->
        let distances = crowding_distances objectives front in
        List.iteri (fun k i -> crowding.(i) <- distances.(k)) front)
      by_front;
    (rank, crowding)
  in
  let generation = ref 0 in
  while !generation < config.max_generations do
    incr generation;
    let members = !population in
    let rank, crowding = keys_of members in
    let better a b =
      rank.(a) < rank.(b) || (rank.(a) = rank.(b) && crowding.(a) > crowding.(b))
    in
    let select () =
      let a = Prng.int rng (Array.length members) in
      let b = Prng.int rng (Array.length members) in
      members.(if better a b then a else b)
    in
    let offspring = ref [] in
    while List.length !offspring < config.population_size do
      let parent_a = select () and parent_b = select () in
      let child_a, child_b =
        if Prng.chance rng config.crossover_rate then
          Genome.two_point_crossover rng parent_a.genome parent_b.genome
        else (Array.copy parent_a.genome, Array.copy parent_b.genome)
      in
      Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate child_a;
      Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate child_b;
      offspring := eval child_a :: !offspring;
      if List.length !offspring < config.population_size then
        offspring := eval child_b :: !offspring
    done;
    (* (μ+λ) environmental selection. *)
    let combined = Array.append members (Array.of_list !offspring) in
    let rank, crowding = keys_of combined in
    let order = Array.init (Array.length combined) Fun.id in
    Array.sort
      (fun a b ->
        if rank.(a) <> rank.(b) then compare rank.(a) rank.(b)
        else compare crowding.(b) crowding.(a))
      order;
    population :=
      Array.init config.population_size (fun k -> combined.(order.(k)))
  done;
  (* First front of the final population, deduplicated by objectives. *)
  let members = !population in
  let rank, _ = keys_of members in
  let front =
    Array.to_list members
    |> List.filteri (fun i _ -> rank.(i) = 0)
    |> List.sort_uniq (fun a b -> compare a.objectives b.objectives)
  in
  { front; generations = !generation; evaluations = !evaluations }
