type t = { src : int; dst : int; max_time : float }

let make ~src ~dst ~max_time =
  if src < 0 || dst < 0 then invalid_arg "Transition.make: negative mode id";
  if src = dst then invalid_arg "Transition.make: self transition";
  if max_time <= 0.0 then invalid_arg "Transition.make: non-positive max_time";
  { src; dst; max_time }

let src t = t.src
let dst t = t.dst
let max_time t = t.max_time
let pp ppf t = Format.fprintf ppf "%d->%d(tmax=%g)" t.src t.dst t.max_time
