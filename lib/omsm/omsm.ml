module Task_type = Mm_taskgraph.Task_type
module Graph = Mm_taskgraph.Graph

type t = {
  name : string;
  modes : Mode.t array;
  transitions : Transition.t list;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let make ~name ~modes ~transitions =
  let modes = Array.of_list modes in
  if Array.length modes = 0 then invalid "OMSM %s has no modes" name;
  Array.iteri
    (fun i m ->
      if Mode.id m <> i then invalid "OMSM %s: modes.(%d) has id %d" name i (Mode.id m))
    modes;
  let total_probability =
    Array.fold_left (fun acc m -> acc +. Mode.probability m) 0.0 modes
  in
  if Float.abs (total_probability -. 1.0) > 1e-6 then
    invalid "OMSM %s: mode probabilities sum to %g, expected 1" name total_probability;
  let n = Array.length modes in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun tr ->
      if Transition.src tr >= n || Transition.dst tr >= n then
        invalid "OMSM %s: transition %a references unknown mode" name Transition.pp tr;
      let key = (Transition.src tr, Transition.dst tr) in
      if Hashtbl.mem seen key then
        invalid "OMSM %s: duplicate transition %a" name Transition.pp tr;
      Hashtbl.add seen key ())
    transitions;
  { name; modes; transitions }

let name t = t.name
let n_modes t = Array.length t.modes
let mode t i = t.modes.(i)
let modes t = Array.to_list t.modes
let transitions t = t.transitions
let transitions_into t dst = List.filter (fun tr -> Transition.dst tr = dst) t.transitions

let total_tasks t =
  Array.fold_left (fun acc m -> acc + Mode.n_tasks m) 0 t.modes

let all_task_types t =
  Array.fold_left
    (fun acc m -> Task_type.Set.union acc (Graph.task_types (Mode.graph m)))
    Task_type.Set.empty t.modes

let modes_using_type t ty =
  List.filter
    (fun i -> Task_type.Set.mem ty (Graph.task_types (Mode.graph t.modes.(i))))
    (List.init (n_modes t) Fun.id)

let shared_task_types t =
  Task_type.Set.filter
    (fun ty -> List.length (modes_using_type t ty) >= 2)
    (all_task_types t)

let probability_entropy t =
  Array.fold_left
    (fun acc m ->
      let p = Mode.probability m in
      if p > 0.0 then acc -. (p *. log p) else acc)
    0.0 t.modes

let pp ppf t =
  Format.fprintf ppf "OMSM %s: %d modes, %d transitions, %d tasks" t.name
    (n_modes t) (List.length t.transitions) (total_tasks t)
