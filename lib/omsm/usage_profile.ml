type observation = { src : int; dst : int; count : float }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let embedded_chain ~n_modes observations =
  if n_modes <= 0 then invalid "Usage_profile: no modes";
  let totals = Array.make n_modes 0.0 in
  List.iter
    (fun { src; dst; count } ->
      if src < 0 || src >= n_modes || dst < 0 || dst >= n_modes then
        invalid "Usage_profile: observation %d->%d out of range" src dst;
      if count <= 0.0 then invalid "Usage_profile: non-positive count on %d->%d" src dst;
      totals.(src) <- totals.(src) +. count)
    observations;
  let matrix = Array.make_matrix n_modes n_modes 0.0 in
  List.iter
    (fun { src; dst; count } -> matrix.(src).(dst) <- matrix.(src).(dst) +. (count /. totals.(src)))
    observations;
  (* Absorbing rows (no observed departure) self-loop to stay
     stochastic. *)
  Array.iteri (fun i total -> if total = 0.0 then matrix.(i).(i) <- 1.0) totals;
  matrix

let check_stochastic matrix =
  let n = Array.length matrix in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Usage_profile.stationary: non-square";
      let total = Array.fold_left ( +. ) 0.0 row in
      if Float.abs (total -. 1.0) > 1e-6 then
        invalid_arg "Usage_profile.stationary: rows must sum to 1";
      Array.iter
        (fun p ->
          if p < -.1e-12 then invalid_arg "Usage_profile.stationary: negative entry")
        row)
    matrix

let stationary ?(max_iterations = 10_000) ?(tolerance = 1e-12) ?(damping = 0.95)
    matrix =
  if not (damping > 0.0 && damping <= 1.0) then
    invalid_arg "Usage_profile.stationary: damping must be in (0, 1]";
  check_stochastic matrix;
  let n = Array.length matrix in
  let uniform = 1.0 /. float_of_int n in
  let pi = Array.make n uniform in
  let next = Array.make n 0.0 in
  let rec iterate k =
    Array.fill next 0 n 0.0;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        next.(j) <- next.(j) +. (pi.(i) *. matrix.(i).(j))
      done
    done;
    (* Damping guarantees convergence on periodic chains and spreads a
       little mass everywhere on reducible ones. *)
    let delta = ref 0.0 in
    for j = 0 to n - 1 do
      let damped = (damping *. next.(j)) +. ((1.0 -. damping) *. uniform) in
      delta := !delta +. Float.abs (damped -. pi.(j));
      pi.(j) <- damped
    done;
    if !delta > tolerance && k < max_iterations then iterate (k + 1)
  in
  iterate 0;
  let total = Array.fold_left ( +. ) 0.0 pi in
  Array.map (fun p -> p /. total) pi

let probabilities ~n_modes ~holding_time observations =
  let pi = stationary (embedded_chain ~n_modes observations) in
  let weighted =
    Array.mapi
      (fun i p ->
        let h = holding_time i in
        if h <= 0.0 then invalid "Usage_profile: non-positive holding time for mode %d" i;
        p *. h)
      pi
  in
  let total = Array.fold_left ( +. ) 0.0 weighted in
  Array.map (fun w -> w /. total) weighted

let apply omsm ~holding_time observations =
  let n_modes = Omsm.n_modes omsm in
  let profile = probabilities ~n_modes ~holding_time observations in
  let modes =
    List.map
      (fun mode ->
        Mode.make ~id:(Mode.id mode) ~name:(Mode.name mode) ~graph:(Mode.graph mode)
          ~period:(Mode.period mode) ~probability:profile.(Mode.id mode))
      (Omsm.modes omsm)
  in
  Omsm.make ~name:(Omsm.name omsm) ~modes ~transitions:(Omsm.transitions omsm)
