type t = {
  id : int;
  name : string;
  graph : Mm_taskgraph.Graph.t;
  period : float;
  probability : float;
}

let make ~id ~name ~graph ~period ~probability =
  if id < 0 then invalid_arg "Mode.make: negative id";
  if period <= 0.0 then invalid_arg "Mode.make: non-positive period";
  if probability < 0.0 || probability > 1.0 then
    invalid_arg "Mode.make: probability outside [0, 1]";
  { id; name; graph; period; probability }

let id t = t.id
let name t = t.name
let graph t = t.graph
let period t = t.period
let probability t = t.probability
let n_tasks t = Mm_taskgraph.Graph.n_tasks t.graph

let pp ppf t =
  Format.fprintf ppf "mode %s#%d(Ψ=%g, φ=%g, %d tasks)" t.name t.id
    t.probability t.period (n_tasks t)
