(** The operational mode state machine ϒ(Ω, Θ): the paper's top-level
    specification model combining a finite state machine over modes with
    one task graph per mode. *)

type t

exception Invalid of string

val make :
  name:string -> modes:Mode.t list -> transitions:Transition.t list -> t
(** Validates: mode ids contiguous and matching list positions, at least
    one mode, probabilities summing to 1 (±1e-6), transition endpoints
    valid with no duplicate (src, dst) pair.  Raises {!Invalid}
    otherwise. *)

val name : t -> string
val n_modes : t -> int
val mode : t -> int -> Mode.t
val modes : t -> Mode.t list
val transitions : t -> Transition.t list
val transitions_into : t -> int -> Transition.t list
(** All transitions whose destination is the given mode. *)

val total_tasks : t -> int
(** Σ_O |T_O|: the length of a multi-mode mapping string. *)

val all_task_types : t -> Mm_taskgraph.Task_type.Set.t

val shared_task_types : t -> Mm_taskgraph.Task_type.Set.t
(** Types appearing in at least two different modes — the resource-sharing
    opportunities that distinguish multi-mode from single-mode
    synthesis. *)

val modes_using_type : t -> Mm_taskgraph.Task_type.t -> int list

val probability_entropy : t -> float
(** Shannon entropy (nats) of the mode execution probability distribution;
    low entropy = heavily skewed usage profile = more to gain from the
    paper's technique. *)

val pp : Format.formatter -> t -> unit
