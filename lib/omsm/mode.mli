(** Operational modes O: one task graph, its repetition period and its
    execution probability. *)

type t = private {
  id : int;
  name : string;
  graph : Mm_taskgraph.Graph.t;
  period : float;
      (** Task-graph repetition period φ (s); the hyper-period over which
          per-mode power is averaged and the implicit deadline of every
          task. *)
  probability : float;
      (** Execution probability Ψ: the fraction of operational time the
          system spends in this mode. *)
}

val make :
  id:int ->
  name:string ->
  graph:Mm_taskgraph.Graph.t ->
  period:float ->
  probability:float ->
  t
(** Raises [Invalid_argument] on a negative id, non-positive period, or a
    probability outside [\[0, 1\]]. *)

val id : t -> int
val name : t -> string
val graph : t -> Mm_taskgraph.Graph.t
val period : t -> float
val probability : t -> float
val n_tasks : t -> int
val pp : Format.formatter -> t -> unit
