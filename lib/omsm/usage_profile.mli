(** Deriving mode execution probabilities from usage statistics.

    The paper assumes the probabilities Ψ_O are given, noting they come
    from "an average usage profile based on statistical information
    collected from several different users" (§2.1.1).  This module
    closes that gap: given observed {e transition frequencies} between
    modes and the {e mean residence time} spent in a mode per visit, it
    computes the long-run fraction of operational time per mode — the
    stationary distribution of the semi-Markov usage process:

    Ψ_i = π_i·h_i / Σ_j π_j·h_j,

    where π is the stationary distribution of the embedded jump chain
    (found by power iteration) and h the mean holding times. *)

type observation = {
  src : int;
  dst : int;
  count : float;  (** Observed number (or rate) of src→dst switches; > 0. *)
}

exception Invalid of string

val embedded_chain : n_modes:int -> observation list -> float array array
(** Row-stochastic jump matrix from the observations.  Rows without any
    outgoing observation self-loop (an absorbing mode).  Raises
    {!Invalid} on out-of-range mode ids or non-positive counts. *)

val stationary :
  ?max_iterations:int ->
  ?tolerance:float ->
  ?damping:float ->
  float array array ->
  float array
(** Power iteration on a row-stochastic matrix.  To guarantee convergence
    on periodic or reducible chains the iteration is damped (mixing with
    the uniform distribution — the PageRank trick); [damping] is the
    weight kept on the chain and must lie in (0, 1], default 0.95.
    [damping:1.0] is the plain undamped iteration (which may oscillate on
    periodic chains).  Raises [Invalid_argument] on a non-square or
    non-stochastic matrix, or a damping outside (0, 1]. *)

val probabilities :
  n_modes:int ->
  holding_time:(int -> float) ->
  observation list ->
  float array
(** The full pipeline: Ψ per mode, summing to 1.  [holding_time mode] is
    the mean time spent in the mode per visit (> 0). *)

val apply :
  Omsm.t -> holding_time:(int -> float) -> observation list -> Omsm.t
(** Rebuild an OMSM with probabilities replaced by the derived profile
    (modes and transitions otherwise unchanged). *)
