(** Mode transitions T = (Ox, Oy) with their maximal transition times. *)

type t = private {
  src : int;
  dst : int;
  max_time : float;  (** t_T^max: bound on the system reconfiguration time. *)
}

val make : src:int -> dst:int -> max_time:float -> t
(** Raises [Invalid_argument] on negative mode ids, [src = dst], or a
    non-positive bound. *)

val src : t -> int
val dst : t -> int
val max_time : t -> float
val pp : Format.formatter -> t -> unit
