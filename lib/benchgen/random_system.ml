module Prng = Mm_util.Prng
module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec

type params = {
  n_modes : int;
  tasks_per_mode : int * int;
  n_pes : int * int;
  n_cls : int * int;
  n_task_types : int * int;
  hw_speedup : float * float;
  hw_power_ratio : float * float;
  probability_skew : float;
  period_tightness : float * float;
  dvs_pe_fraction : float;
}

let default_params =
  {
    n_modes = 4;
    tasks_per_mode = (8, 32);
    n_pes = (2, 4);
    n_cls = (1, 3);
    n_task_types = (10, 18);
    hw_speedup = (5.0, 100.0);
    hw_power_ratio = (0.005, 0.05);
    probability_skew = 3.0;
    period_tightness = (0.8, 1.3);
    dvs_pe_fraction = 0.5;
  }

let in_range rng (lo, hi) = Prng.int_in rng lo hi
let in_frange rng (lo, hi) = Prng.float_in rng lo hi

let standard_rails =
  [
    Voltage.make ~levels:[ 3.3; 2.7; 2.1; 1.5 ] ~threshold:0.5;
    Voltage.make ~levels:[ 2.5; 1.8; 1.2 ] ~threshold:0.4;
    Voltage.make ~levels:[ 1.8; 1.35; 0.9 ] ~threshold:0.3;
  ]

let random_architecture rng params =
  let n_pes = in_range rng params.n_pes in
  let random_rail () =
    if Prng.chance rng params.dvs_pe_fraction then Some (Prng.pick rng standard_rails)
    else None
  in
  let make_pe id =
    (* PE0 is always a GPP so that every task type has a software
       fallback implementation; PE1 is always a hardware component so
       that the mapping decisions the paper studies (SW vs HW, sharing
       vs duplication) exist in every generated system. *)
    let kind =
      if id = 0 then Pe.Gpp
      else if id = 1 then (if Prng.chance rng 0.7 then Pe.Asic else Pe.Fpga)
      else
        let r = Prng.float rng 1.0 in
        if r < 0.2 then Pe.Gpp
        else if r < 0.4 then Pe.Asip
        else if r < 0.8 then Pe.Asic
        else Pe.Fpga
    in
    match kind with
    | Pe.Gpp | Pe.Asip ->
      (* PE0 is always DVS-enabled: the paper's DVS experiments rely on at
         least one voltage-scalable processor (cf. the smart phone's DVS
         GPP). *)
      let rail =
        if id = 0 then Some (Prng.pick rng standard_rails) else random_rail ()
      in
      Pe.make ~id
        ~name:(Printf.sprintf "%s%d" (Pe.kind_to_string kind) id)
        ~kind
        ~static_power:(in_frange rng (2e-4, 8e-4))
        ?rail ()
    | Pe.Asic ->
      let rail = random_rail () in
      Pe.make ~id
        ~name:(Printf.sprintf "ASIC%d" id)
        ~kind:Pe.Asic
        ~static_power:(in_frange rng (1e-4, 4e-4))
        ?rail
        ~area_capacity:(in_frange rng (400.0, 900.0))
        ()
    | Pe.Fpga ->
      let rail = random_rail () in
      Pe.make ~id
        ~name:(Printf.sprintf "FPGA%d" id)
        ~kind:Pe.Fpga
        ~static_power:(in_frange rng (2e-4, 6e-4))
        ?rail
        ~area_capacity:(in_frange rng (400.0, 900.0))
        ~reconfig_time_per_area:(in_frange rng (2e-5, 8e-5))
        ()
  in
  let pes = List.init n_pes make_pe in
  let all_pe_ids = List.init n_pes Fun.id in
  let n_cls = in_range rng params.n_cls in
  let make_cl id =
    let connects =
      if id = 0 || n_pes = 2 then all_pe_ids (* the system bus reaches every PE *)
      else
        let size = Prng.int_in rng 2 n_pes in
        Prng.sample_without_replacement rng size all_pe_ids
    in
    Cl.make ~id
      ~name:(Printf.sprintf "CL%d" id)
      ~connects
      ~time_per_data:(in_frange rng (2e-4, 8e-4))
      ~transfer_power:(in_frange rng (0.02, 0.08))
      ~static_power:(in_frange rng (2e-5, 1e-4))
  in
  let cls = List.init n_cls make_cl in
  Arch.make ~name:"random" ~pes ~cls

(* Per type: a software baseline profile plus derived per-PE
   implementation points; hardware is [hw_speedup] faster at
   [hw_power_ratio] of the power (the paper's stated assumption). *)
let random_tech_lib rng params arch types =
  let add_type tech ty =
    let base_time = in_frange rng (2e-3, 2e-2) in
    let base_power = in_frange rng (0.1, 0.5) in
    List.fold_left
      (fun tech pe ->
        if Pe.is_software pe then
          let impl =
            Tech_lib.impl
              ~exec_time:(base_time *. in_frange rng (0.8, 1.3))
              ~dyn_power:(base_power *. in_frange rng (0.8, 1.2))
              ()
          in
          Tech_lib.add tech ~ty ~pe impl
        else if Prng.chance rng 0.85 then
          let impl =
            Tech_lib.impl
              ~exec_time:(base_time /. in_frange rng params.hw_speedup)
              ~dyn_power:(base_power *. in_frange rng params.hw_power_ratio)
              ~area:(in_frange rng (60.0, 200.0))
              ()
          in
          Tech_lib.add tech ~ty ~pe impl
        else tech)
      tech (Arch.pes arch)
  in
  List.fold_left add_type Tech_lib.empty types

(* Layered DAG in topological id order: task ids ascend with layers, so
   edges always point from smaller to larger ids. *)
let random_graph rng params ~mode_id ~types ~mean_sw_time =
  let n = in_range rng params.tasks_per_mode in
  let depth =
    max 2 (int_of_float (sqrt (float_of_int n) *. Prng.float_in rng 1.0 1.8))
  in
  let depth = min depth n in
  (* Distribute n tasks over [depth] layers, each non-empty. *)
  let layer_of = Array.make n 0 in
  for i = 0 to n - 1 do
    layer_of.(i) <- (if i < depth then i else Prng.int rng depth)
  done;
  Array.sort compare layer_of;
  let task_types = Array.init n (fun _ -> Prng.pick rng types) in
  let tasks =
    Array.init n (fun i ->
        Task.make ~id:i
          ~name:(Printf.sprintf "m%dt%d" mode_id i)
          ~ty:task_types.(i) ())
  in
  let edges = ref [] in
  for j = 0 to n - 1 do
    if layer_of.(j) > 0 then begin
      let earlier = List.filter (fun i -> layer_of.(i) < layer_of.(j)) (List.init n Fun.id) in
      let previous_layer = List.filter (fun i -> layer_of.(i) = layer_of.(j) - 1) earlier in
      let n_preds = Prng.int_in rng 1 (min 3 (List.length earlier)) in
      let chosen = ref [] in
      for _ = 1 to n_preds do
        let pool =
          if previous_layer <> [] && Prng.chance rng 0.7 then previous_layer else earlier
        in
        let candidate = Prng.pick rng pool in
        if not (List.mem candidate !chosen) then chosen := candidate :: !chosen
      done;
      List.iter
        (fun i ->
          edges :=
            { Graph.src = i; dst = j; data = Prng.float_in rng 1.0 8.0 } :: !edges)
        !chosen
    end
  done;
  let serial_sw_time =
    Array.fold_left (fun acc ty -> acc +. mean_sw_time ty) 0.0 task_types
  in
  let period = serial_sw_time *. in_frange rng params.period_tightness in
  (* Some sinks get explicit deadlines tighter than the period. *)
  let graph_no_deadline =
    Graph.make ~name:(Printf.sprintf "mode%d" mode_id) ~tasks ~edges:!edges
  in
  let sinks = Graph.sinks graph_no_deadline in
  let tasks_with_deadlines =
    Array.map
      (fun task ->
        if List.mem (Task.id task) sinks && Prng.chance rng 0.3 then
          Task.make ~id:(Task.id task) ~name:(Task.name task) ~ty:(Task.ty task)
            ~deadline:(period *. Prng.float_in rng 0.75 1.0)
            ()
        else task)
      tasks
  in
  let graph =
    Graph.make ~name:(Printf.sprintf "mode%d" mode_id) ~tasks:tasks_with_deadlines
      ~edges:!edges
  in
  (graph, period)

let random_transitions rng n_modes =
  (* A ring guarantees every mode is enterable; extra chords make the
     FSM denser, like the smart phone's OMSM. *)
  let ring =
    List.init n_modes (fun i ->
        Transition.make ~src:i ~dst:((i + 1) mod n_modes)
          ~max_time:(Prng.float_in rng 0.05 0.15))
  in
  let extra = ref [] in
  let n_extra = Prng.int rng (n_modes + 1) in
  for _ = 1 to n_extra do
    let src = Prng.int rng n_modes and dst = Prng.int rng n_modes in
    let duplicate t = Transition.src t = src && Transition.dst t = dst in
    if src <> dst && not (List.exists duplicate (ring @ !extra)) then
      extra :=
        Transition.make ~src ~dst ~max_time:(Prng.float_in rng 0.05 0.15) :: !extra
  done;
  ring @ !extra

(* A generated system must admit at least one implementation that is
   feasible without any hardware core (zero area, zero reconfiguration):
   then infeasibility can only ever be a search failure, never a property
   of the benchmark, and hardware scarcity shapes the energy trade-off
   exactly as in the paper's motivational example.  An instance is
   accepted when scheduling all tasks on software PEs — either all on PE0
   or round-robin across the software PEs — meets every deadline. *)
let all_software_feasible spec =
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let sw_ids = List.map Pe.id (Arch.software_pes arch) in
  let feasible_with assign =
    List.for_all
      (fun mode ->
        let graph = Mode.graph mode in
        let mapping = Array.init (Graph.n_tasks graph) assign in
        let sched =
          Mm_sched.List_scheduler.run
            (Mm_sched.List_scheduler.make_input ~mode_id:(Mode.id mode) ~graph
               ~arch ~tech ~mapping
               ~instances:(fun ~pe:_ ~ty:_ -> 1)
               ~period:(Mode.period mode) ())
        in
        Mm_sched.Schedule.lateness sched ~graph = [])
      (Omsm.modes (Spec.omsm spec))
  in
  match sw_ids with
  | [] -> false
  | first :: _ ->
    feasible_with (fun _ -> first)
    || feasible_with (fun i -> List.nth sw_ids (i mod List.length sw_ids))

let generate_once ~params ~seed () =
  let rng = Prng.create ~seed in
  let n_types = in_range rng params.n_task_types in
  let types = List.init n_types (fun i -> Task_type.make ~id:i ~name:(Printf.sprintf "T%d" i)) in
  let arch = random_architecture rng params in
  let tech = random_tech_lib rng params arch types in
  let sw_pes = Arch.software_pes arch in
  let mean_sw_time ty =
    let times =
      List.filter_map
        (fun pe ->
          Option.map (fun impl -> impl.Tech_lib.exec_time) (Tech_lib.find tech ~ty ~pe))
        sw_pes
    in
    match times with
    | [] -> 0.01
    | _ -> List.fold_left ( +. ) 0.0 times /. float_of_int (List.length times)
  in
  let probabilities = Prng.dirichlet_like rng params.n_modes ~skew:params.probability_skew in
  let modes =
    List.init params.n_modes (fun mode_id ->
        let graph, period = random_graph rng params ~mode_id ~types ~mean_sw_time in
        Mode.make ~id:mode_id
          ~name:(Printf.sprintf "O%d" mode_id)
          ~graph ~period ~probability:probabilities.(mode_id))
  in
  let transitions = random_transitions rng params.n_modes in
  let omsm = Omsm.make ~name:(Printf.sprintf "random-%d" seed) ~modes ~transitions in
  Spec.make ~omsm ~arch ~tech

let generate ?(params = default_params) ~seed () =
  let max_attempts = 64 in
  let rec attempt k =
    (* Derive per-attempt seeds deterministically from the user's seed. *)
    let spec = generate_once ~params ~seed:(seed + (1_000_003 * k)) () in
    if all_software_feasible spec || k + 1 >= max_attempts then spec
    else attempt (k + 1)
  in
  attempt 0

let mul_mode_counts = [| 4; 4; 5; 5; 3; 4; 4; 4; 4; 5; 3; 4 |]

let mul_mode_count i =
  if i < 1 || i > 12 then invalid_arg "Random_system.mul_mode_count: index in 1..12";
  mul_mode_counts.(i - 1)

let mul i =
  if i < 1 || i > 12 then invalid_arg "Random_system.mul: index in 1..12";
  let params = { default_params with n_modes = mul_mode_counts.(i - 1) } in
  generate ~params ~seed:(1000 + i) ()
