(** The paper's real-life smart phone benchmark (Fig. 1, Table 3).

    Eight operational modes combining GSM telephony, MP3 playback and
    digital-camera JPEG decoding, with the published usage profile
    (74 % Radio Link Control, 9 % GSM codec + RLC, 10 % MP3 + RLC, …) and
    the published architecture: one DVS-enabled GPP and two ASICs on a
    single bus.

    The task graphs are synthetic stand-ins with the structure of the
    referenced applications (GSM 06.10 codec, mpeg3play, jpeg-6b):
    per-mode node counts range from 5 to ~40, task types such as FFT, HD,
    IDCT, ColorTr, DeQ, STP, LTP are shared across modes (Fig. 1c), and
    hardware implementations are 5–100× faster than software, drawn
    deterministically from a fixed seed — see DESIGN.md §3 for why this
    substitution preserves the experiment. *)

val spec : unit -> Mm_cosynth.Spec.t
(** The full co-synthesis problem.  Deterministic: every call builds an
    identical specification. *)

val mode_names : string array
(** The eight mode names, by mode id. *)

val probabilities : float array
(** The published usage profile, by mode id. *)
