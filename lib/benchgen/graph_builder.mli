(** Small imperative helper for hand-authoring task graphs (used by the
    smart phone model and by tests). *)

type t

val create : unit -> t

val add :
  t -> name:string -> ty:Mm_taskgraph.Task_type.t -> ?deadline:float -> unit -> int
(** Appends a task; returns its id. *)

val link : t -> ?data:float -> int -> int -> unit
(** [link b src dst] adds a precedence edge ([data] defaults to 1.0). *)

val chain : t -> ?data:float -> int list -> unit
(** Links consecutive ids. *)

val build : t -> name:string -> Mm_taskgraph.Graph.t
val n_tasks : t -> int
