module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec

(* Task types A–F: (sw exec ms, sw energy mWs, hw exec ms, hw energy mWs,
   hw area cells) — the table of §2.3 verbatim. *)
let table =
  [|
    ("A", 20.0, 10.0, 2.0, 0.010, 240.0);
    ("B", 28.0, 14.0, 2.2, 0.012, 300.0);
    ("C", 32.0, 16.0, 1.6, 0.023, 275.0);
    ("D", 26.0, 13.0, 3.1, 0.047, 245.0);
    ("E", 30.0, 15.0, 1.8, 0.015, 210.0);
    ("F", 24.0, 14.0, 2.2, 0.032, 280.0);
  |]

let types =
  Array.mapi (fun id (name, _, _, _, _, _) -> Task_type.make ~id ~name) table

(* The example neglects timing and communication, and compares energies
   weighted by probability.  Modelling choices that make our Eq. (1)
   produce the paper's numbers exactly: period 1 s for both modes (so
   average power in mW equals weighted energy in mWs), zero static
   powers, zero-data edges (no communication cost). *)
let spec () =
  let gpp = Pe.make ~id:0 ~name:"PE0" ~kind:Pe.Gpp ~static_power:0.0 () in
  let asic =
    Pe.make ~id:1 ~name:"PE1" ~kind:Pe.Asic ~static_power:0.0 ~area_capacity:600.0 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"CL0" ~connects:[ 0; 1 ] ~time_per_data:1e-6 ~transfer_power:0.0
      ~static_power:0.0
  in
  let arch = Arch.make ~name:"fig2" ~pes:[ gpp; asic ] ~cls:[ bus ] in
  let add_type tech (name, sw_ms, sw_mws, hw_ms, hw_mws, area) =
    let ty =
      match Array.find_opt (fun t -> Task_type.name t = name) types with
      | Some t -> t
      | None -> assert false
    in
    let tech =
      Tech_lib.add tech ~ty ~pe:gpp
        (Tech_lib.impl ~exec_time:(sw_ms /. 1e3) ~dyn_power:(sw_mws /. sw_ms) ())
    in
    Tech_lib.add tech ~ty ~pe:asic
      (Tech_lib.impl ~exec_time:(hw_ms /. 1e3) ~dyn_power:(hw_mws /. hw_ms) ~area ())
  in
  let tech = Array.fold_left add_type Tech_lib.empty table in
  let chain_graph ~name ~type_ids =
    let tasks =
      Array.of_list
        (List.mapi
           (fun id ty_id ->
             Task.make ~id ~name:(Printf.sprintf "t%d" id) ~ty:types.(ty_id) ())
           type_ids)
    in
    let edges =
      List.init (Array.length tasks - 1) (fun i ->
          { Graph.src = i; dst = i + 1; data = 0.0 })
    in
    Graph.make ~name ~tasks ~edges
  in
  let mode1 =
    Mode.make ~id:0 ~name:"O1"
      ~graph:(chain_graph ~name:"O1" ~type_ids:[ 0; 1; 2 ])
      ~period:1.0 ~probability:0.1
  in
  let mode2 =
    Mode.make ~id:1 ~name:"O2"
      ~graph:(chain_graph ~name:"O2" ~type_ids:[ 3; 4; 5 ])
      ~period:1.0 ~probability:0.9
  in
  let transitions =
    [ Transition.make ~src:0 ~dst:1 ~max_time:1.0;
      Transition.make ~src:1 ~dst:0 ~max_time:1.0 ]
  in
  let omsm = Omsm.make ~name:"fig2" ~modes:[ mode1; mode2 ] ~transitions in
  Spec.make ~omsm ~arch ~tech
