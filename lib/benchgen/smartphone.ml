module Prng = Mm_util.Prng
module Task_type = Mm_taskgraph.Task_type
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module B = Graph_builder

(* Task types.  The first seven are the cores named in Fig. 1c; the rest
   cover the GSM radio stack, the MP3 decoder chain, network search and
   photo display.  [hw] marks signal-processing types that may also be
   implemented as ASIC cores; control-dominated types stay software-only. *)
let type_table =
  [|
    (* name, sw exec time (s), sw dyn power (W), hardware-capable *)
    ("FFT", 1.8e-3, 0.35, true);
    ("HD", 1.2e-3, 0.30, true);
    ("IDCT", 1.6e-3, 0.38, true);
    ("ColorTr", 0.9e-3, 0.28, true);
    ("DeQ", 0.5e-3, 0.22, true);
    ("STP", 1.4e-3, 0.33, true);
    ("LTP", 1.7e-3, 0.36, true);
    ("RPE", 1.5e-3, 0.34, true);
    ("LPC", 1.3e-3, 0.31, true);
    ("Preproc", 0.6e-3, 0.20, false);
    ("Postproc", 0.5e-3, 0.20, false);
    ("ChanEst", 1.1e-3, 0.30, true);
    ("Equalize", 1.9e-3, 0.40, true);
    ("Deintl", 0.4e-3, 0.18, false);
    ("Viterbi", 2.4e-3, 0.45, true);
    ("TxMod", 0.8e-3, 0.25, false);
    ("RfCtrl", 0.5e-3, 0.20, false);
    ("Handover", 0.7e-3, 0.22, false);
    ("PowerCtrl", 0.4e-3, 0.18, false);
    ("SyncParse", 0.5e-3, 0.20, false);
    ("Stereo", 0.6e-3, 0.22, true);
    ("AntiAlias", 0.8e-3, 0.26, true);
    ("FreqInv", 0.5e-3, 0.20, true);
    ("SynthFB", 2.2e-3, 0.42, true);
    ("ScanRF", 1.0e-3, 0.30, false);
    ("Correlate", 1.6e-3, 0.36, true);
    ("DecodeBCCH", 0.9e-3, 0.28, false);
    ("ReadImg", 1.2e-3, 0.25, false);
    ("Scale", 1.5e-3, 0.30, true);
    ("Dither", 1.1e-3, 0.28, true);
    ("LcdWrite", 0.8e-3, 0.24, false);
    ("ParseHdr", 0.6e-3, 0.20, false);
    ("Pack", 0.4e-3, 0.18, false);
  |]

let ty =
  let types =
    Array.mapi (fun id (name, _, _, _) -> Task_type.make ~id ~name) type_table
  in
  fun name ->
    match Array.find_opt (fun t -> Task_type.name t = name) types with
    | Some t -> t
    | None -> invalid_arg ("Smartphone.ty: unknown type " ^ name)

(* --- Application sub-graphs ------------------------------------------- *)

(* GSM radio link control: receive chain, control fan-out, transmit. *)
let add_rlc b =
  let chan_est = B.add b ~name:"rlc_chan_est" ~ty:(ty "ChanEst") () in
  let equalize = B.add b ~name:"rlc_equalize" ~ty:(ty "Equalize") () in
  let deintl = B.add b ~name:"rlc_deintl" ~ty:(ty "Deintl") () in
  let viterbi = B.add b ~name:"rlc_viterbi" ~ty:(ty "Viterbi") () in
  let rf_ctrl = B.add b ~name:"rlc_rf_ctrl" ~ty:(ty "RfCtrl") () in
  let handover = B.add b ~name:"rlc_handover" ~ty:(ty "Handover") () in
  let power_ctrl = B.add b ~name:"rlc_power_ctrl" ~ty:(ty "PowerCtrl") () in
  let tx_mod = B.add b ~name:"rlc_tx_mod" ~ty:(ty "TxMod") () in
  B.chain b [ chan_est; equalize; deintl; viterbi ];
  B.link b viterbi rf_ctrl;
  B.link b viterbi handover;
  B.link b viterbi power_ctrl;
  B.link b power_ctrl tx_mod;
  ()

(* GSM 06.10 full-rate codec: encoder and decoder chains per frame. *)
let add_gsm_codec b =
  let pre = B.add b ~name:"enc_preproc" ~ty:(ty "Preproc") () in
  let lpc = B.add b ~name:"enc_lpc" ~ty:(ty "LPC") () in
  let stp_e = B.add b ~name:"enc_stp" ~ty:(ty "STP") () in
  let ltp_e = B.add b ~name:"enc_ltp" ~ty:(ty "LTP") () in
  let rpe_e = B.add b ~name:"enc_rpe" ~ty:(ty "RPE") () in
  let pack = B.add b ~name:"enc_pack" ~ty:(ty "Pack") () in
  B.chain b [ pre; lpc; stp_e; ltp_e; rpe_e; pack ];
  let unpack = B.add b ~name:"dec_unpack" ~ty:(ty "Pack") () in
  let rpe_d = B.add b ~name:"dec_rpe" ~ty:(ty "RPE") () in
  let ltp_d = B.add b ~name:"dec_ltp" ~ty:(ty "LTP") () in
  let stp_d = B.add b ~name:"dec_stp" ~ty:(ty "STP") () in
  let post = B.add b ~name:"dec_postproc" ~ty:(ty "Postproc") () in
  B.chain b [ unpack; rpe_d; ltp_d; stp_d; post ];
  ()

(* mpeg3play-style MP3 decoder: shared front end, two granules of two
   channels each through the filter bank. *)
let add_mp3 b =
  let sync = B.add b ~name:"mp3_sync" ~ty:(ty "SyncParse") () in
  let hd = B.add b ~name:"mp3_huffman" ~ty:(ty "HD") () in
  let deq = B.add b ~name:"mp3_dequant" ~ty:(ty "DeQ") () in
  let stereo = B.add b ~name:"mp3_stereo" ~ty:(ty "Stereo") () in
  B.chain b [ sync; hd; deq; stereo ];
  let mix = B.add b ~name:"mp3_mix" ~ty:(ty "Postproc") () in
  for granule = 0 to 1 do
    for channel = 0 to 1 do
      let tag = Printf.sprintf "g%dc%d" granule channel in
      let anti = B.add b ~name:("mp3_alias_" ^ tag) ~ty:(ty "AntiAlias") () in
      let imdct = B.add b ~name:("mp3_imdct_" ^ tag) ~ty:(ty "IDCT") () in
      let freq = B.add b ~name:("mp3_freqinv_" ^ tag) ~ty:(ty "FreqInv") () in
      let synth = B.add b ~name:("mp3_synth_" ^ tag) ~ty:(ty "SynthFB") () in
      B.link b stereo anti;
      B.chain b [ anti; imdct; freq; synth ];
      B.link b synth mix
    done
  done;
  ()

(* jpeg-6b-style baseline decoder: serial entropy decoding feeding
   [stripes] parallel dequantise→IDCT→colour pipelines. *)
let add_jpeg b ~stripes =
  let hdr = B.add b ~name:"jpg_parse" ~ty:(ty "ParseHdr") () in
  let hd = B.add b ~name:"jpg_huffman" ~ty:(ty "HD") () in
  let merge = B.add b ~name:"jpg_merge" ~ty:(ty "Postproc") () in
  B.link b hdr hd;
  for stripe = 0 to stripes - 1 do
    let tag = string_of_int stripe in
    let deq = B.add b ~name:("jpg_deq_" ^ tag) ~ty:(ty "DeQ") () in
    let idct = B.add b ~name:("jpg_idct_" ^ tag) ~ty:(ty "IDCT") () in
    let color = B.add b ~name:("jpg_color_" ^ tag) ~ty:(ty "ColorTr") () in
    B.link b hd deq ~data:2.0;
    B.chain b [ deq; idct; color ];
    B.link b color merge
  done;
  ()

(* Cell search: RF scan feeding two FFT windows correlated against the
   synchronisation sequence. *)
let add_net_search b =
  let scan = B.add b ~name:"ns_scan" ~ty:(ty "ScanRF") () in
  let fft_a = B.add b ~name:"ns_fft_a" ~ty:(ty "FFT") () in
  let fft_b = B.add b ~name:"ns_fft_b" ~ty:(ty "FFT") () in
  let corr_a = B.add b ~name:"ns_corr_a" ~ty:(ty "Correlate") () in
  let corr_b = B.add b ~name:"ns_corr_b" ~ty:(ty "Correlate") () in
  let bcch = B.add b ~name:"ns_bcch" ~ty:(ty "DecodeBCCH") () in
  B.link b scan fft_a;
  B.link b scan fft_b;
  B.link b fft_a corr_a;
  B.link b fft_b corr_b;
  B.link b corr_a bcch;
  B.link b corr_b bcch;
  ()

(* 256-colour photo display pipeline (Fig. 1b's Show Photo side). *)
let add_photo_show b =
  let read = B.add b ~name:"ph_read" ~ty:(ty "ReadImg") () in
  let color = B.add b ~name:"ph_colortr" ~ty:(ty "ColorTr") () in
  let scale = B.add b ~name:"ph_scale" ~ty:(ty "Scale") () in
  let dither = B.add b ~name:"ph_dither" ~ty:(ty "Dither") () in
  let lcd = B.add b ~name:"ph_lcd" ~ty:(ty "LcdWrite") () in
  B.chain b [ read; color; scale; dither; lcd ];
  ()

(* --- Modes (Fig. 1a) --------------------------------------------------- *)

let mode_names =
  [|
    "GSM codec + RLC";
    "Radio Link Control";
    "Network Search";
    "decode Photo + RLC";
    "Show Photo";
    "MP3 play + RLC";
    "MP3 play + Network Search";
    "decode Photo + Network Search";
  |]

let probabilities = [| 0.09; 0.74; 0.01; 0.02; 0.02; 0.10; 0.01; 0.01 |]

let periods = [| 0.020; 0.025; 0.050; 0.050; 0.040; 0.025; 0.025; 0.050 |]

let build_mode id =
  let b = B.create () in
  (match id with
  | 0 ->
    add_gsm_codec b;
    add_rlc b
  | 1 -> add_rlc b
  | 2 -> add_net_search b
  | 3 ->
    add_jpeg b ~stripes:8;
    add_rlc b
  | 4 -> add_photo_show b
  | 5 ->
    add_mp3 b;
    add_rlc b
  | 6 ->
    add_mp3 b;
    add_net_search b
  | 7 ->
    add_jpeg b ~stripes:8;
    add_net_search b
  | _ -> invalid_arg "Smartphone.build_mode");
  let graph = B.build b ~name:mode_names.(id) in
  Mode.make ~id ~name:mode_names.(id) ~graph ~period:periods.(id)
    ~probability:probabilities.(id)

let transitions =
  (* (src, dst): the mode-change events of Fig. 1a. *)
  [
    (0, 1); (1, 0);  (* terminate call / incoming call            *)
    (1, 2); (2, 1);  (* network lost / network found              *)
    (1, 5); (5, 1);  (* play audio / terminate audio              *)
    (1, 3);          (* take photo                                *)
    (3, 4);          (* photo decoded, show it                    *)
    (4, 1); (4, 2);  (* terminate photo                           *)
    (5, 6); (6, 5);  (* network lost / found while playing        *)
    (2, 6); (6, 2);  (* play audio / terminate audio (no network) *)
    (2, 7);          (* take photo (no network)                   *)
    (7, 4);          (* photo decoded, show it                    *)
  ]
  |> List.map (fun (src, dst) -> Transition.make ~src ~dst ~max_time:0.030)

(* --- Architecture (Fig. 1c): one DVS GPP + two ASICs on a bus. -------- *)

let architecture () =
  let rail = Voltage.make ~levels:[ 3.3; 2.7; 2.1; 1.5 ] ~threshold:0.5 in
  let gpp =
    Pe.make ~id:0 ~name:"CPU" ~kind:Pe.Gpp ~static_power:5e-4 ~rail ()
  in
  let asic1 =
    Pe.make ~id:1 ~name:"ASIC1" ~kind:Pe.Asic ~static_power:2e-4
      ~area_capacity:900.0 ()
  in
  let asic2 =
    Pe.make ~id:2 ~name:"ASIC2" ~kind:Pe.Asic ~static_power:2e-4
      ~area_capacity:900.0 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"BUS" ~connects:[ 0; 1; 2 ] ~time_per_data:1e-4
      ~transfer_power:0.05 ~static_power:5e-5
  in
  Arch.make ~name:"smartphone" ~pes:[ gpp; asic1; asic2 ] ~cls:[ bus ]

(* Hardware implementation points follow the paper's stated assumption —
   "hardware tasks typically executed 5 to 100 times faster than their
   software counterparts" — drawn from a fixed-seed generator so the
   benchmark is identical on every build. *)
let technology_library arch =
  let rng = Prng.create ~seed:20030307 in
  let pes = Arch.pes arch in
  Array.to_list type_table
  |> List.fold_left
       (fun tech (name, sw_time, sw_power, hw_capable) ->
         let t = ty name in
         List.fold_left
           (fun tech pe ->
             if Pe.is_software pe then
               Tech_lib.add tech ~ty:t ~pe
                 (Tech_lib.impl ~exec_time:sw_time ~dyn_power:sw_power ())
             else if hw_capable then
               let speedup = Prng.float_in rng 5.0 100.0 in
               let power_ratio = Prng.float_in rng 0.005 0.03 in
               let area = Prng.float_in rng 80.0 220.0 in
               Tech_lib.add tech ~ty:t ~pe
                 (Tech_lib.impl
                    ~exec_time:(sw_time /. speedup)
                    ~dyn_power:(sw_power *. power_ratio)
                    ~area ())
             else tech)
           tech pes)
       Tech_lib.empty

let spec () =
  let arch = architecture () in
  let tech = technology_library arch in
  let modes = List.init 8 build_mode in
  let omsm = Omsm.make ~name:"smartphone" ~modes ~transitions in
  Spec.make ~omsm ~arch ~tech
