(** The paper's first motivational example (§2.3, Fig. 2), with the
    exact published numbers.

    Two chain-structured modes with execution probabilities 0.1/0.9 on a
    GPP + ASIC architecture.  Neglecting the probabilities, the optimal
    mapping implements C and E in hardware (26.7158 mWs weighted
    energy); considering them it implements E and F instead
    (15.7423 mWs), a 41 % reduction.

    Promoted from [examples/motivational.ml] into the library so the
    golden regression fixtures and the examples pin the {e same}
    specification. *)

val spec : unit -> Mm_cosynth.Spec.t
(** The Fig. 2 co-synthesis problem.  Deterministic: every call builds
    an identical specification. *)
