(** TGFF-style random multi-mode benchmark generator.

    Reproduces the paper's experimental set-up (§5): each generated
    example has 3–5 operational modes of 8–32 tasks, a target architecture
    of 2–4 heterogeneous PEs (some DVS-enabled) connected by 1–3 CLs, a
    technology library in which hardware implementations are 5–100×
    faster than software ones, and an uneven mode-usage profile.
    Generation is fully deterministic in the seed. *)

type params = {
  n_modes : int;
  tasks_per_mode : int * int;  (** Inclusive range; paper: 8–32. *)
  n_pes : int * int;  (** Paper: 2–4. *)
  n_cls : int * int;  (** Paper: 1–3. *)
  n_task_types : int * int;
      (** Size of the shared type pool; drawing mode tasks from one pool
          creates the cross-mode type intersections of §2.1.2. *)
  hw_speedup : float * float;  (** Paper assumption: 5–100×. *)
  hw_power_ratio : float * float;  (** HW dynamic power relative to SW. *)
  probability_skew : float;
      (** Skew of the mode-probability draw (see
          {!Mm_util.Prng.dirichlet_like}). *)
  period_tightness : float * float;
      (** Mode period as a fraction of the all-software serial execution
          time: < 1 forces either parallelism or hardware offload. *)
  dvs_pe_fraction : float;  (** Probability that a PE is DVS-enabled. *)
}

val default_params : params
(** The paper's published ranges ([n_modes] = 4). *)

val generate : ?params:params -> seed:int -> unit -> Mm_cosynth.Spec.t
(** A fresh random co-synthesis problem. *)

val mul : int -> Mm_cosynth.Spec.t
(** [mul i] for i in 1..12: the repository's stand-ins for the paper's
    benchmarks mul1–mul12, with the paper's published mode counts
    (4,4,5,5,3,4,4,4,4,5,3,4) and fixed seeds. *)

val mul_mode_count : int -> int
(** The paper's mode count for benchmark [i] (1-based). *)

val all_software_feasible : Mm_cosynth.Spec.t -> bool
(** Whether the specification admits a deadline-feasible schedule with
    every task on software PEs (all on PE0, or round-robin).  {!generate}
    redraws until this holds, so infeasibility of a synthesis result can
    only ever be a search failure, never a property of the benchmark. *)
