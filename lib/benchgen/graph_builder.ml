module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph

type t = {
  mutable tasks : Task.t list;  (** Reversed. *)
  mutable edges : Graph.edge list;
  mutable next_id : int;
}

let create () = { tasks = []; edges = []; next_id = 0 }

let add b ~name ~ty ?deadline () =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.tasks <- Task.make ~id ~name ~ty ?deadline () :: b.tasks;
  id

let link b ?(data = 1.0) src dst =
  b.edges <- { Graph.src; dst; data } :: b.edges

let chain b ?data ids =
  let rec loop = function
    | a :: (c :: _ as rest) ->
      link b ?data a c;
      loop rest
    | [ _ ] | [] -> ()
  in
  loop ids

let build b ~name =
  Graph.make ~name ~tasks:(Array.of_list (List.rev b.tasks)) ~edges:b.edges

let n_tasks b = b.next_id
