(** Power/area trade-off exploration.

    The paper notes its reductions come "without a modification of the
    underlying hardware architectures, i.e. the system costs are not
    increased".  This module explores the complementary question — how
    does attainable average power change as the hardware area budget
    shrinks or grows?  It re-synthesises the same OMSM against scaled
    copies of the architecture and extracts the non-dominated
    (area, power) points. *)

type point = {
  area_scale : float;  (** Multiplier applied to every hardware PE's capacity. *)
  hw_area_capacity : float;  (** Total scaled capacity (cells). *)
  hw_area_used : float;  (** Area used by the best implementation found. *)
  power : float;  (** Its true average power (W). *)
  feasible : bool;
  result : Synthesis.result;
}

val scale_architecture : Spec.t -> float -> Spec.t
(** A copy of the specification whose hardware PEs have their area
    capacities multiplied by the factor (> 0); everything else shared. *)

val sweep :
  ?config:Synthesis.config ->
  spec:Spec.t ->
  scales:float list ->
  seed:int ->
  unit ->
  point list
(** One synthesis per scale, in the given order. *)

val frontier : point list -> point list
(** Feasible points not dominated in (capacity, power), sorted by
    capacity: smaller area and lower power is better. *)
