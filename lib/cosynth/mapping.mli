(** The multi-mode mapping string M_τ: a decoded genome giving, for every
    mode, the PE each task executes on (paper Fig. 2b/2c). *)

type t = private int array array
(** [t.(mode).(task)] = PE id. *)

val of_genome : Spec.t -> int array -> t
(** Decodes gene values (candidate indices) into PE ids.  Raises
    [Invalid_argument] on a malformed genome. *)

val of_arrays : Spec.t -> int array array -> t
(** Build an explicit mapping ([result.(mode).(task)] = PE id),
    validating shape and that every task's PE supports its type. *)

val to_genome : Spec.t -> t -> int array
(** Re-encode; raises [Invalid_argument] if a task is mapped to a PE that
    does not support it. *)

val pe_of : t -> mode:int -> task:int -> int

val tasks_on_pe : t -> mode:int -> pe:int -> int list
(** Task ids of the mode mapped to the PE. *)

val pes_used : t -> mode:int -> int list
(** Distinct PE ids used by the mode, ascending. *)

val pp : Spec.t -> Format.formatter -> t -> unit
