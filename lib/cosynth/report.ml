module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Power = Mm_energy.Power
module Pe = Mm_arch.Pe
module Arch = Mm_arch.Architecture

let pp_watts ppf w =
  if w < 1e-3 then Format.fprintf ppf "%.4gµW" (w *. 1e6)
  else if w < 1.0 then Format.fprintf ppf "%.4gmW" (w *. 1e3)
  else Format.fprintf ppf "%.4gW" w

let pp_eval spec ppf (eval : Fitness.eval) =
  let omsm = Spec.omsm spec in
  Format.fprintf ppf "average power (true Ψ): %a@." pp_watts eval.Fitness.true_power;
  Format.fprintf ppf "feasible: %b (timing %b, area %b, transition %b, routable %b)@."
    (Fitness.feasible eval) eval.Fitness.timing_feasible eval.Fitness.area_feasible
    eval.Fitness.transition_feasible eval.Fitness.routable;
  Array.iteri
    (fun i mp ->
      let mode = Omsm.mode omsm i in
      Format.fprintf ppf "  %s (Ψ=%g): dyn %a, stat %a" (Mode.name mode)
        (Mode.probability mode) pp_watts mp.Power.dyn_power pp_watts
        mp.Power.static_power;
      (match mp.Power.shut_down_pes with
      | [] -> ()
      | pes ->
        Format.fprintf ppf ", shut down PEs: %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
             Format.pp_print_int)
          pes);
      Format.fprintf ppf "@.")
    eval.Fitness.mode_powers;
  Format.fprintf ppf "  mapping:@.";
  Array.iteri
    (fun mode per_task ->
      Format.fprintf ppf "    %s:" (Mode.name (Omsm.mode omsm mode));
      Array.iteri
        (fun task pe ->
          Format.fprintf ppf " τ%d→%s" task (Pe.name (Arch.pe (Spec.arch spec) pe)))
        per_task;
      Format.fprintf ppf "@.")
    (eval.Fitness.mapping : Mapping.t :> int array array);
  match eval.Fitness.transition_times with
  | [] -> ()
  | entries ->
    Format.fprintf ppf "  transitions:@.";
    List.iter
      (fun (e : Transition_time.entry) ->
        Format.fprintf ppf "    %a: t=%g (limit %g)%s@." Transition.pp e.transition
          e.time
          (Transition.max_time e.transition)
          (if e.violation > 0.0 then "  VIOLATED" else ""))
      entries

let pp_result spec ppf (result : Synthesis.result) =
  pp_eval spec ppf result.Synthesis.eval;
  Format.fprintf ppf "GA: %d generations, %d evaluations (%d cache hits), %.2fs CPU@."
    result.Synthesis.generations result.Synthesis.evaluations
    result.Synthesis.cache_hits result.Synthesis.cpu_seconds;
  match result.Synthesis.audit with
  | None -> ()
  | Some report ->
    if report.Audit.clean then
      Format.fprintf ppf "audit: clean (%d modes checked)@."
        report.Audit.modes_checked
    else Format.fprintf ppf "%a" Audit.pp_report report

let print_result spec result =
  Format.printf "%a@?" (pp_result spec) result

let pp_fleet ppf fleet =
  Format.fprintf ppf "@[<v>%a@]@." Mm_energy.Fleet_sim.pp fleet

let print_fleet fleet = Format.printf "%a@?" pp_fleet fleet

let pp_metrics ppf () =
  let snap = Mm_obs.Metrics.snapshot () in
  let nonzero_counters = List.filter (fun (_, v) -> v <> 0) snap.Mm_obs.Metrics.counters in
  let nonzero_gauges = List.filter (fun (_, v) -> v <> 0.0) snap.Mm_obs.Metrics.gauges in
  let live_histograms =
    List.filter
      (fun (_, h) -> h.Mm_obs.Metrics.count > 0)
      snap.Mm_obs.Metrics.histograms
  in
  if nonzero_counters <> [] || nonzero_gauges <> [] || live_histograms <> [] then begin
    Format.fprintf ppf "metrics:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-24s %d@." name v)
      nonzero_counters;
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-24s %g@." name v)
      nonzero_gauges;
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %-24s n=%-7d total %.1f ms, mean %.0f µs, max %.0f µs@."
          name h.Mm_obs.Metrics.count
          (h.Mm_obs.Metrics.sum /. 1e3)
          (h.Mm_obs.Metrics.sum /. float_of_int h.Mm_obs.Metrics.count)
          h.Mm_obs.Metrics.max)
      live_histograms;
    (* Derived per-mode cache hit rate (DESIGN.md §10): how many of the
       fitness pipeline's per-mode (schedule, scaling, power) lookups
       were answered from the compiled context's cache. *)
    let count name = try List.assoc name nonzero_counters with Not_found -> 0 in
    let hits = count "fitness/mode_cache_hits" in
    let misses = count "fitness/mode_cache_misses" in
    if hits + misses > 0 then
      Format.fprintf ppf "  %-24s %.1f%% (%d/%d)@." "mode cache hit rate"
        (100.0 *. float_of_int hits /. float_of_int (hits + misses))
        hits (hits + misses)
  end

let print_metrics () = Format.printf "%a@?" pp_metrics ()
