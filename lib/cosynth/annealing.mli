(** Simulated-annealing baseline for the mapping problem.

    The multi-mode co-synthesis literature the paper builds on commonly
    uses simulated annealing for hardware/software partitioning (e.g.
    Kalavade & Subrahmanyam's multifunction partitioning [7]); this
    module provides such a baseline over exactly the same genome encoding
    and fitness as the GA, so the two mappers can be compared
    head-to-head (bench target: [ablation]).

    Moves re-map one to three randomly chosen (mode, task) positions to a
    different candidate PE.  Acceptance follows Metropolis with a
    geometric cooling schedule; the search keeps the best candidate ever
    visited. *)

type config = {
  initial_temperature : float;
      (** Relative to the initial fitness: the starting temperature is
          [initial_temperature *. fitness(start)]. *)
  cooling : float;  (** Geometric factor per step, in (0, 1). *)
  steps : int;  (** Total number of proposed moves. *)
  moves_per_step : int;  (** Gene re-assignments per proposal (upper bound). *)
}

val default_config : config

type result = {
  genome : int array;
  eval : Fitness.eval;
  accepted : int;  (** Accepted moves. *)
  evaluations : int;
  cpu_seconds : float;
}

val run :
  ?config:config ->
  ?fitness:Fitness.config ->
  spec:Spec.t ->
  seed:int ->
  unit ->
  result
(** Starts from the best software anchor (see {!Synthesis}) when one
    exists, otherwise from a random genome. *)
