(** Mode-change reconfiguration times t_T.

    Entering a mode may require loading cores onto FPGAs that the source
    mode did not have loaded; reconfiguring one area unit costs the
    FPGA's [reconfig_time_per_area].  ASIC cores are static and free.
    The OMSM's transition edges impose maximal times t_T^max; exceeding
    one makes the implementation infeasible (paper §3, requirement c). *)

type entry = {
  transition : Mm_omsm.Transition.t;
  time : float;  (** Reconfiguration time of this mode change. *)
  violation : float;  (** max(0, time / max_time − 1). *)
}

val compute : Spec.t -> Core_alloc.t -> entry list
(** One entry per OMSM transition. *)

val violation_sum : entry list -> float
val feasible : entry list -> bool
