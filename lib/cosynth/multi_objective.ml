module Prng = Mm_util.Prng
module Nsga2 = Mm_ga.Nsga2
module Pe = Mm_arch.Pe
module Arch = Mm_arch.Architecture

type point = {
  genome : int array;
  power : float;
  area : float;
  eval : Fitness.eval;
}

type result = {
  front : point list;
  generations : int;
  evaluations : int;
}

let area_used_of spec (eval : Fitness.eval) =
  List.fold_left
    (fun acc pe -> acc +. Core_alloc.area_used eval.Fitness.alloc ~pe:(Pe.id pe))
    0.0
    (Arch.hardware_pes (Spec.arch spec))

let optimise ?(config = Nsga2.default_config) ?(fitness = Fitness.default_config) ~spec
    ~seed () =
  let fitness = { fitness with Fitness.weighting = Fitness.True_probabilities } in
  let evaluate genome =
    let eval = Fitness.evaluate fitness spec genome in
    let boost = if Fitness.feasible eval then 1.0 else 1e6 in
    let area = area_used_of spec eval in
    ( [|
        eval.Fitness.true_power *. eval.Fitness.timing_factor *. eval.Fitness.area_factor
        *. eval.Fitness.transition_factor *. eval.Fitness.routability_factor *. boost;
        (area +. 1.0) *. boost;
      |],
      eval )
  in
  let problem =
    {
      Nsga2.gene_counts = Spec.gene_counts spec;
      n_objectives = 2;
      evaluate;
      initial = Synthesis.software_anchors spec;
    }
  in
  let rng = Prng.create ~seed in
  let nsga = Nsga2.run ~config ~rng problem in
  let front =
    List.filter_map
      (fun (ind : Fitness.eval Nsga2.individual) ->
        if Fitness.feasible ind.Nsga2.info then
          Some
            {
              genome = ind.Nsga2.genome;
              power = ind.Nsga2.info.Fitness.true_power;
              area = area_used_of spec ind.Nsga2.info;
              eval = ind.Nsga2.info;
            }
        else None)
      nsga.Nsga2.front
    |> List.sort (fun a b -> compare (a.area, a.power) (b.area, b.power))
  in
  { front; generations = nsga.Nsga2.generations; evaluations = nsga.Nsga2.evaluations }
