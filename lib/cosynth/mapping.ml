module Omsm = Mm_omsm.Omsm
module Pe = Mm_arch.Pe

type t = int array array

let of_genome spec genome =
  if Array.length genome <> Spec.n_positions spec then
    invalid_arg "Mapping.of_genome: genome length mismatch";
  let n_modes = Omsm.n_modes (Spec.omsm spec) in
  let mapping =
    Array.init n_modes (fun mode -> Array.make (Spec.mode_task_count spec mode) (-1))
  in
  Array.iteri
    (fun i gene ->
      let { Spec.mode; task } = Spec.position spec i in
      let cands = Spec.candidates spec i in
      if gene < 0 || gene >= Array.length cands then
        invalid_arg "Mapping.of_genome: gene out of range";
      mapping.(mode).(task) <- Pe.id cands.(gene))
    genome;
  mapping

let of_arrays spec arrays =
  let omsm = Spec.omsm spec in
  if Array.length arrays <> Omsm.n_modes omsm then
    invalid_arg "Mapping.of_arrays: mode count mismatch";
  Array.iteri
    (fun mode per_task ->
      if Array.length per_task <> Spec.mode_task_count spec mode then
        invalid_arg "Mapping.of_arrays: task count mismatch";
      Array.iteri
        (fun task pe ->
          let i = Spec.index_of spec ~mode ~task in
          match Spec.candidate_index spec i ~pe_id:pe with
          | Some _ -> ()
          | None -> invalid_arg "Mapping.of_arrays: task mapped to unsupported PE")
        per_task)
    arrays;
  Array.map Array.copy arrays

let to_genome spec mapping =
  Array.init (Spec.n_positions spec) (fun i ->
      let { Spec.mode; task } = Spec.position spec i in
      match Spec.candidate_index spec i ~pe_id:mapping.(mode).(task) with
      | Some g -> g
      | None -> invalid_arg "Mapping.to_genome: task mapped to unsupported PE")

let pe_of t ~mode ~task = t.(mode).(task)

let tasks_on_pe t ~mode ~pe =
  let tasks = ref [] in
  Array.iteri (fun task p -> if p = pe then tasks := task :: !tasks) t.(mode);
  List.rev !tasks

let pes_used t ~mode =
  Array.to_list t.(mode) |> List.sort_uniq Int.compare

let pp spec ppf t =
  let omsm = Spec.omsm spec in
  Array.iteri
    (fun mode per_task ->
      Format.fprintf ppf "%s:@ " (Mm_omsm.Mode.name (Omsm.mode omsm mode));
      Array.iteri (fun task pe -> Format.fprintf ppf "τ%d->PE%d@ " task pe) per_task;
      Format.fprintf ppf "@.")
    t
