(** The paper's four genetic improvement operators (Fig. 4, lines 19–22).

    Each is packaged as an {!Mm_ga.Engine.improvement} over genomes whose
    evaluation feedback is a {!Fitness.eval}:

    - {e shutdown}: free a randomly chosen non-essential PE from one mode
      so it can be powered down during that mode (applied to 2 % of
      offspring, the rate the paper found effective);
    - {e area}: when the candidate violates area constraints, re-map
      random hardware tasks onto software PEs;
    - {e timing}: when it violates deadlines, re-map random software
      tasks onto faster hardware implementations;
    - {e transition}: when it violates maximal mode-transition times,
      re-map tasks away from the FPGAs causing the reconfiguration
      overhead. *)

val shutdown : Spec.t -> Fitness.eval Mm_ga.Engine.improvement
val area : Spec.t -> Fitness.eval Mm_ga.Engine.improvement
val timing : Spec.t -> Fitness.eval Mm_ga.Engine.improvement
val transition : Spec.t -> Fitness.eval Mm_ga.Engine.improvement

val all : Spec.t -> Fitness.eval Mm_ga.Engine.improvement list
(** The four operators in the paper's order. *)
