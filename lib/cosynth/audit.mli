(** Post-evaluation invariant auditor.

    Re-derives, independently of the list scheduler, [Mm_dvs.Scaling]
    and [Fitness.assemble], that a reported solution actually is what
    its fitness claims: schedules respect precedence and resource
    exclusivity, deadlines are met iff no timing penalty was applied,
    every DVS voltage sits on the PE's discrete rail with
    extension-time and energy math consistent, and mode-transition
    times stay within the OMSM edge bounds (or were penalised).  The
    correctness backstop behind [Synthesis.config.audit] and the
    [--audit] CLI flag: an optimizer or kernel bug cannot silently
    report an infeasible schedule as a power win. *)

type kind =
  | Malformed_slot  (** Slot indexing/resource/mapping inconsistency. *)
  | Wrong_duration  (** Slot duration is not the implementation's t_min. *)
  | Resource_overlap  (** Two slots overlap on one sequential resource. *)
  | Precedence  (** A data dependency starts before its producer ends. *)
  | Comm_mismatch  (** Communication slot timing/link/energy wrong. *)
  | Unroutable_claim  (** Unroutable set or routability claim wrong. *)
  | Deadline_claim  (** Timing feasibility/factor contradicts finishes. *)
  | Voltage_off_table  (** A voltage outside the PE's discrete table. *)
  | Extension_time  (** Scaled duration ≠ t_min · delay factor. *)
  | Energy_mismatch  (** Task/segment/communication energy accounting. *)
  | Power_mismatch  (** Mode or average power ≠ recomputed value. *)
  | Transition_bound  (** Transition times/violations ≠ recomputed. *)
  | Area_claim  (** Area feasibility/factor contradicts the allocation. *)
  | Fitness_claim  (** Final fitness ≠ power × penalty factors. *)

val kind_to_string : kind -> string

type violation = { kind : kind; mode : int option; detail : string }

type report = {
  violations : violation list;
  modes_checked : int;
  clean : bool;  (** [violations = []]. *)
}

exception Audit_violation of report

val check : config:Fitness.config -> spec:Spec.t -> Fitness.eval -> report
(** Never raises; increments the [audit/*] metrics
    ([audit/runs], [audit/modes_checked], [audit/violations]). *)

val check_exn : config:Fitness.config -> spec:Spec.t -> Fitness.eval -> unit
(** Raises {!Audit_violation} when the report is not clean. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
