module Prng = Mm_util.Prng
module Stats = Mm_util.Stats
module Power = Mm_energy.Power
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode

type report = {
  nominal : float;
  mean : float;
  std : float;
  worst : float;
  best : float;
  samples : int;
}

type comparison = {
  baseline : report;
  proposed : report;
  wins : int;
}

let published_profile spec =
  let omsm = Spec.omsm spec in
  Array.init (Omsm.n_modes omsm) (fun i -> Mode.probability (Omsm.mode omsm i))

(* One perturbed profile: log-normal factors on each probability,
   renormalised. *)
let perturb rng ~strength psi =
  let weights = Array.map (fun p -> p *. exp (strength *. Prng.gaussian rng)) psi in
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then Array.copy psi else Array.map (fun w -> w /. total) weights

let mode_totals ~fitness ~spec mapping =
  let eval = Fitness.evaluate_mapping fitness spec mapping in
  Array.map Power.total eval.Fitness.mode_powers

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let report_of ~nominal powers =
  let s = Stats.summarize powers in
  {
    nominal;
    mean = s.Stats.mean;
    std = s.Stats.std;
    worst = s.Stats.max;
    best = s.Stats.min;
    samples = s.Stats.n;
  }

let analyse ?(samples = 1000) ?(strength = 0.3) ?(fitness = Fitness.default_config)
    ~spec ~mapping ~seed () =
  if samples <= 0 then invalid_arg "Sensitivity.analyse: samples must be positive";
  if strength < 0.0 then invalid_arg "Sensitivity.analyse: negative strength";
  let psi = published_profile spec in
  let totals = mode_totals ~fitness ~spec mapping in
  let rng = Prng.create ~seed in
  let powers =
    List.init samples (fun _ -> dot (perturb rng ~strength psi) totals)
  in
  report_of ~nominal:(dot psi totals) powers

let compare_mappings ?(samples = 1000) ?(strength = 0.3)
    ?(fitness = Fitness.default_config) ~spec ~baseline ~proposed ~seed () =
  if samples <= 0 then invalid_arg "Sensitivity.compare_mappings: samples must be positive";
  let psi = published_profile spec in
  let totals_baseline = mode_totals ~fitness ~spec baseline in
  let totals_proposed = mode_totals ~fitness ~spec proposed in
  let rng = Prng.create ~seed in
  let baseline_powers = ref [] and proposed_powers = ref [] and wins = ref 0 in
  for _ = 1 to samples do
    let profile = perturb rng ~strength psi in
    let pb = dot profile totals_baseline and pp = dot profile totals_proposed in
    baseline_powers := pb :: !baseline_powers;
    proposed_powers := pp :: !proposed_powers;
    if pp < pb then incr wins
  done;
  {
    baseline = report_of ~nominal:(dot psi totals_baseline) !baseline_powers;
    proposed = report_of ~nominal:(dot psi totals_proposed) !proposed_powers;
    wins = !wins;
  }
