module Stats = Mm_util.Stats

type arm = {
  power : Stats.summary;
  cpu_seconds : Stats.summary;
  best : Synthesis.result;
}

type comparison = {
  without_probabilities : arm;
  with_probabilities : arm;
  reduction_percent : float;
}

let run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache ~weighting ~spec
    ~runs ~seed =
  if runs <= 0 then invalid_arg "Experiment.compare: runs must be positive";
  let config =
    {
      Synthesis.fitness = { Fitness.default_config with Fitness.weighting; dvs };
      ga;
      use_improvements;
      restarts;
      jobs;
      eval_cache;
    }
  in
  (* One cache per arm, shared across its repeated runs: later runs reuse
     evaluations the earlier ones already paid for.  Sharing cannot
     change any synthesised result (evaluation is pure, cached values
     exact); the statistics reset keeps each run's hit-rate figures
     clean of its predecessors' traffic. *)
  let cache =
    if eval_cache > 0 then Some (Mm_parallel.Memo.create ~capacity:eval_cache)
    else None
  in
  let results =
    List.init runs (fun r ->
        Option.iter Mm_parallel.Memo.reset_stats cache;
        Synthesis.run ~config ?cache ~spec ~seed:(seed + r) ())
  in
  let powers = List.map Synthesis.average_power results in
  let cpu = List.map (fun r -> r.Synthesis.cpu_seconds) results in
  let best =
    List.fold_left
      (fun acc r ->
        if Synthesis.average_power r < Synthesis.average_power acc then r else acc)
      (List.hd results) (List.tl results)
  in
  { power = Stats.summarize powers; cpu_seconds = Stats.summarize cpu; best }

let compare ?(ga = Mm_ga.Engine.default_config) ?(dvs = Fitness.No_dvs)
    ?(use_improvements = true) ?(restarts = Synthesis.default_config.Synthesis.restarts)
    ?(jobs = Synthesis.default_config.Synthesis.jobs)
    ?(eval_cache = Synthesis.default_config.Synthesis.eval_cache) ~spec ~runs ~seed () =
  let without_probabilities =
    run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache
      ~weighting:Fitness.Uniform ~spec ~runs ~seed
  in
  let with_probabilities =
    run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache
      ~weighting:Fitness.True_probabilities ~spec ~runs ~seed
  in
  {
    without_probabilities;
    with_probabilities;
    reduction_percent =
      Stats.percent_reduction ~from:without_probabilities.power.Stats.mean
        ~to_:with_probabilities.power.Stats.mean;
  }
