module Stats = Mm_util.Stats

let p_checkpoint = Mm_obs.Probe.create "experiment/checkpoint"

type arm = {
  power : Stats.summary;
  cpu_seconds : Stats.summary;
  best : Synthesis.result;
}

type comparison = {
  without_probabilities : arm;
  with_probabilities : arm;
  reduction_percent : float;
}

type run_summary = {
  genome : int array;
  power : float;
  cpu_seconds : float;
  generations : int;
  evaluations : int;
  cache_hits : int;
  history : float list;
}

type state = {
  seed : int;
  runs : int;
  baseline_done : run_summary list;
  proposed_done : run_summary list;
}

let summarize_run (r : Synthesis.result) =
  {
    genome = Array.copy r.Synthesis.genome;
    power = Synthesis.average_power r;
    cpu_seconds = r.Synthesis.cpu_seconds;
    generations = r.Synthesis.generations;
    evaluations = r.Synthesis.evaluations;
    cache_hits = r.Synthesis.cache_hits;
    history = r.Synthesis.history;
  }

let run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache ~audit ~islands
    ~migration_interval ~migration_count ~robust ~weighting ~spec ~runs ~seed
    ~completed ~on_run =
  if runs <= 0 then invalid_arg "Experiment.compare: runs must be positive";
  if List.length completed > runs then
    invalid_arg "Experiment.compare: snapshot holds more runs than requested";
  let fitness = { Fitness.default_config with Fitness.weighting; dvs } in
  let config =
    {
      Synthesis.fitness;
      ga;
      use_improvements;
      restarts;
      jobs;
      eval_cache;
      delta = Synthesis.default_config.Synthesis.delta;
      audit;
      islands;
      migration_interval;
      migration_count;
      robust;
    }
  in
  (* One cache per arm, shared across its repeated runs: later runs reuse
     evaluations the earlier ones already paid for.  Sharing cannot
     change any synthesised result (evaluation is pure, cached values
     exact); the statistics reset keeps each run's hit-rate figures
     clean of its predecessors' traffic.  A resumed arm starts with a
     cold cache, so evaluation counts of its remaining runs can differ
     from the uninterrupted arm's — synthesised powers never do. *)
  let cache =
    (* Pointless under the island model: Synthesis ignores a shared
       cache there (each island keeps a private one, see
       {!Synthesis.run}). *)
    if eval_cache > 0 && islands <= 1 then
      Some (Mm_parallel.Memo.adaptive ~capacity:eval_cache)
    else None
  in
  (* Oldest-first; replayed runs carry no [Synthesis.result] — if one of
     them ends up best, the result is rebuilt from its genome below. *)
  let pairs = ref (List.map (fun s -> (s, None)) completed) in
  for r = List.length completed to runs - 1 do
    Option.iter Mm_parallel.Memo.reset_stats cache;
    let result = Synthesis.run ~config ?cache ~spec ~seed:(seed + r) () in
    pairs := !pairs @ [ (summarize_run result, Some result) ];
    match on_run with
    | None -> ()
    | Some save ->
      Mm_obs.Probe.run
        ~args:(fun () -> [ ("run", string_of_int r) ])
        p_checkpoint
        (fun () -> save (List.map fst !pairs))
  done;
  let powers = List.map (fun (s, _) -> s.power) !pairs in
  let cpu = List.map (fun (s, _) -> s.cpu_seconds) !pairs in
  let best_index, best_summary, best_result =
    match List.mapi (fun i (s, r) -> (i, s, r)) !pairs with
    | [] -> assert false (* runs >= 1 *)
    | first :: rest ->
      List.fold_left
        (fun ((_, bs, _) as acc) ((_, s, _) as cand) ->
          if s.power < bs.power then cand else acc)
        first rest
  in
  let best =
    match best_result with
    | Some result -> result
    | None ->
      (* Pure evaluation: recomputing from the genome reproduces the
         replayed run's evaluation bit-for-bit.  The effective config
         re-derives any robust Ψ samples from the replayed run's own
         seed. *)
      let fitness =
        Synthesis.effective_fitness_config config ~spec ~seed:(seed + best_index)
      in
      {
        Synthesis.genome = best_summary.genome;
        eval = Fitness.evaluate fitness spec best_summary.genome;
        generations = best_summary.generations;
        evaluations = best_summary.evaluations;
        cache_hits = best_summary.cache_hits;
        cpu_seconds = best_summary.cpu_seconds;
        history = best_summary.history;
        audit = None;
      }
  in
  ( { power = Stats.summarize powers; cpu_seconds = Stats.summarize cpu; best },
    List.map fst !pairs )

let compare ?(ga = Mm_ga.Engine.default_config) ?(dvs = Fitness.No_dvs)
    ?(use_improvements = true) ?(restarts = Synthesis.default_config.Synthesis.restarts)
    ?(jobs = Synthesis.default_config.Synthesis.jobs)
    ?(eval_cache = Synthesis.default_config.Synthesis.eval_cache) ?(audit = false)
    ?(islands = Synthesis.default_config.Synthesis.islands)
    ?(migration_interval = Synthesis.default_config.Synthesis.migration_interval)
    ?(migration_count = Synthesis.default_config.Synthesis.migration_count)
    ?(robust = None) ?checkpoint ?resume ~spec ~runs ~seed () =
  (match resume with
  | None -> ()
  | Some st ->
    if st.seed <> seed || st.runs <> runs then
      invalid_arg "Experiment.compare: snapshot seed/runs do not match this comparison";
    if List.length st.baseline_done > runs || List.length st.proposed_done > runs then
      invalid_arg "Experiment.compare: snapshot holds more runs than requested";
    (* The proposed arm only starts once the baseline arm is complete. *)
    if st.proposed_done <> [] && List.length st.baseline_done < runs then
      invalid_arg "Experiment.compare: snapshot proposed-arm runs precede a full baseline");
  let baseline_done = match resume with None -> [] | Some st -> st.baseline_done in
  let proposed_done = match resume with None -> [] | Some st -> st.proposed_done in
  let without_probabilities, baseline_all =
    run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache ~audit ~islands
      ~migration_interval ~migration_count ~robust ~weighting:Fitness.Uniform ~spec
      ~runs ~seed ~completed:baseline_done
      ~on_run:
        (Option.map
           (fun save summaries ->
             save { seed; runs; baseline_done = summaries; proposed_done = [] })
           checkpoint)
  in
  let with_probabilities, _ =
    run_arm ~ga ~dvs ~use_improvements ~restarts ~jobs ~eval_cache ~audit ~islands
      ~migration_interval ~migration_count ~robust
      ~weighting:Fitness.True_probabilities ~spec ~runs ~seed
      ~completed:proposed_done
      ~on_run:
        (Option.map
           (fun save summaries ->
             save { seed; runs; baseline_done = baseline_all; proposed_done = summaries })
           checkpoint)
  in
  {
    without_probabilities;
    with_probabilities;
    reduction_percent =
      Stats.percent_reduction ~from:without_probabilities.power.Stats.mean
        ~to_:with_probabilities.power.Stats.mean;
  }
