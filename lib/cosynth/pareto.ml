module Pe = Mm_arch.Pe
module Arch = Mm_arch.Architecture

type point = {
  area_scale : float;
  hw_area_capacity : float;
  hw_area_used : float;
  power : float;
  feasible : bool;
  result : Synthesis.result;
}

let scale_architecture spec factor =
  if factor <= 0.0 then invalid_arg "Pareto.scale_architecture: non-positive factor";
  let arch = Spec.arch spec in
  let scaled_pe pe =
    if Pe.is_hardware pe then
      Pe.make ~id:(Pe.id pe) ~name:(Pe.name pe) ~kind:(Pe.kind pe)
        ~static_power:(Pe.static_power pe)
        ?rail:(Pe.rail pe)
        ~area_capacity:(Pe.area_capacity pe *. factor)
        ~reconfig_time_per_area:(Pe.reconfig_time_per_area pe)
        ()
    else pe
  in
  let scaled_arch =
    Arch.make ~name:(Arch.name arch) ~pes:(List.map scaled_pe (Arch.pes arch))
      ~cls:(Arch.cls arch)
  in
  Spec.make ~omsm:(Spec.omsm spec) ~arch:scaled_arch ~tech:(Spec.tech spec)

let total_hw_capacity spec =
  List.fold_left
    (fun acc pe -> acc +. Pe.area_capacity pe)
    0.0
    (Arch.hardware_pes (Spec.arch spec))

let sweep ?(config = Synthesis.default_config) ~spec ~scales ~seed () =
  List.map
    (fun area_scale ->
      let scaled_spec = scale_architecture spec area_scale in
      let result = Synthesis.run ~config ~spec:scaled_spec ~seed () in
      let alloc = result.Synthesis.eval.Fitness.alloc in
      let hw_area_used =
        List.fold_left
          (fun acc pe -> acc +. Core_alloc.area_used alloc ~pe:(Pe.id pe))
          0.0
          (Arch.hardware_pes (Spec.arch scaled_spec))
      in
      {
        area_scale;
        hw_area_capacity = total_hw_capacity scaled_spec;
        hw_area_used;
        power = Synthesis.average_power result;
        feasible = Fitness.feasible result.Synthesis.eval;
        result;
      })
    scales

let frontier points =
  let feasible = List.filter (fun p -> p.feasible) points in
  let dominated p =
    List.exists
      (fun q ->
        q != p
        && q.hw_area_capacity <= p.hw_area_capacity
        && q.power <= p.power
        && (q.hw_area_capacity < p.hw_area_capacity || q.power < p.power))
      feasible
  in
  List.filter (fun p -> not (dominated p)) feasible
  |> List.sort (fun a b -> compare a.hw_area_capacity b.hw_area_capacity)
