module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Mobility = Mm_taskgraph.Mobility
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Tech_lib = Mm_arch.Tech_lib

module Int_map = Map.Make (Int)

type t = {
  arch : Arch.t;
  (* per mode, per PE: type id -> instance count actually loaded. *)
  loaded : int Int_map.t array array;
  area_used : float array;
  area_excess : float array;
}

let type_area spec ~pe ~ty_id = Spec.core_area spec ~pe ~ty_id

(* Maximum number of simultaneously executable tasks among the given
   tasks, from their ASAP..(ALAP+exec) windows: sweep the window
   endpoints. *)
let max_window_overlap mobility tasks =
  let events =
    List.concat_map
      (fun task ->
        let start = mobility.Mobility.asap.(task) in
        let finish = mobility.Mobility.alap.(task) +. mobility.Mobility.exec.(task) in
        [ (start, 1); (finish, -1) ])
      tasks
  in
  let sorted = List.sort compare events in
  let best = ref 0 and current = ref 0 in
  List.iter
    (fun (_, delta) ->
      current := !current + delta;
      best := max !best !current)
    sorted;
  !best

let allocate spec mapping ~mobilities =
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let n_modes = Omsm.n_modes omsm in
  let n_pes = Arch.n_pes arch in
  (* Base allocation: one instance per (mode, hw PE, used type); wishes
     for extra instances collected alongside. *)
  let loaded = Array.init n_modes (fun _ -> Array.make n_pes Int_map.empty) in
  let wishes = ref [] in
  for mode = 0 to n_modes - 1 do
    let graph = Mode.graph (Omsm.mode omsm mode) in
    for pe = 0 to n_pes - 1 do
      if Pe.is_hardware (Arch.pe arch pe) then begin
        let tasks = Mapping.tasks_on_pe mapping ~mode ~pe in
        let by_type =
          List.fold_left
            (fun acc task ->
              let ty_id = Task_type.id (Task.ty (Graph.task graph task)) in
              let existing = Option.value ~default:[] (Int_map.find_opt ty_id acc) in
              Int_map.add ty_id (task :: existing) acc)
            Int_map.empty tasks
        in
        Int_map.iter
          (fun ty_id ty_tasks ->
            loaded.(mode).(pe) <- Int_map.add ty_id 1 loaded.(mode).(pe);
            let desired = max_window_overlap mobilities.(mode) ty_tasks in
            if desired > 1 then begin
              let avg_mobility =
                List.fold_left
                  (fun acc task -> acc +. Mobility.mobility mobilities.(mode) task)
                  0.0 ty_tasks
                /. float_of_int (List.length ty_tasks)
              in
              wishes := (avg_mobility, mode, pe, ty_id, desired) :: !wishes
            end)
          by_type
      end
    done
  done;
  (* ASIC cores are static: replicate the union of per-mode working sets
     into every mode (a type mapped to an ASIC anywhere exists always). *)
  for pe = 0 to n_pes - 1 do
    let pe_rec = Arch.pe arch pe in
    if Pe.kind pe_rec = Pe.Asic then begin
      let union =
        Array.fold_left
          (fun acc per_pe ->
            Int_map.union (fun _ a b -> Some (max a b)) acc per_pe.(pe))
          Int_map.empty loaded
      in
      Array.iter (fun per_pe -> per_pe.(pe) <- union) loaded
    end
  done;
  let area_of_map pe m =
    Int_map.fold
      (fun ty_id count acc -> acc +. (float_of_int count *. type_area spec ~pe ~ty_id))
      m 0.0
  in
  let pe_area_used pe =
    let pe_rec = Arch.pe arch pe in
    if not (Pe.is_hardware pe_rec) then 0.0
    else
      Array.fold_left
        (fun acc per_pe -> Float.max acc (area_of_map pe per_pe.(pe)))
        0.0 loaded
  in
  (* Grant extra instances lowest-mobility wishes first while the area
     constraint holds. *)
  let sorted_wishes = List.sort compare !wishes in
  List.iter
    (fun (_, mode, pe, ty_id, desired) ->
      let pe_rec = Arch.pe arch pe in
      let capacity = Pe.area_capacity pe_rec in
      let unit_area = type_area spec ~pe ~ty_id in
      let raise_count per_pe =
        per_pe.(pe) <-
          Int_map.update ty_id
            (function Some c -> Some (c + 1) | None -> Some 1)
            per_pe.(pe)
      in
      let current () = Option.value ~default:0 (Int_map.find_opt ty_id loaded.(mode).(pe)) in
      let fits_after_raise () =
        if unit_area <= 0.0 then true
        else if Pe.kind pe_rec = Pe.Asic then pe_area_used pe +. unit_area <= capacity +. 1e-9
        else area_of_map pe loaded.(mode).(pe) +. unit_area <= capacity +. 1e-9
      in
      let rec grow () =
        if current () < desired && fits_after_raise () then begin
          if Pe.kind pe_rec = Pe.Asic then Array.iter raise_count loaded
          else raise_count loaded.(mode);
          grow ()
        end
      in
      grow ())
    sorted_wishes;
  let area_used = Array.init n_pes pe_area_used in
  let area_excess =
    Array.init n_pes (fun pe ->
        let pe_rec = Arch.pe arch pe in
        if Pe.is_hardware pe_rec then
          Float.max 0.0 (area_used.(pe) -. Pe.area_capacity pe_rec)
        else 0.0)
  in
  { arch; loaded; area_used; area_excess }

let instances t ~mode ~pe ~ty =
  Option.value ~default:0 (Int_map.find_opt ty t.loaded.(mode).(pe))

let area_used t ~pe = t.area_used.(pe)
let area_excess t ~pe = t.area_excess.(pe)

let excess_ratio_sum t =
  let acc = ref 0.0 in
  Array.iteri
    (fun pe excess ->
      if excess > 0.0 then
        acc := !acc +. (excess /. Pe.area_capacity (Arch.pe t.arch pe)))
    t.area_excess;
  !acc

let loaded_types t ~mode ~pe = Int_map.bindings t.loaded.(mode).(pe)
let area_feasible t = Array.for_all (fun e -> e <= 1e-9) t.area_excess
