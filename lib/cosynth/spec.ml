module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Tech_lib = Mm_arch.Tech_lib

type position = { mode : int; task : int }

module Int_map = Map.Make (Int)

(* Everything mapping-independent that the fitness pipeline needs per
   candidate, hoisted out of the per-evaluation path and built exactly
   once per specification (paper Fig. 4's inner loop runs thousands of
   times per synthesis; see DESIGN.md §10).  The route table and
   dispatch are immutable and shared freely across domains; the
   per-mode memo caches are domain-local (each worker domain lazily
   gets its own), because [Memo.t] is not thread-safe. *)
type compiled = {
  routes : Mm_sched.Comm_mapping.table;
  dispatch : Tech_lib.dispatch;
  mobility_cache :
    Mm_taskgraph.Mobility.t Mm_parallel.Memo.t Domain.DLS.key;
  eval_cache :
    (Mm_sched.Schedule.t * Mm_dvs.Scaling.t * Mm_energy.Power.mode_power)
    Mm_parallel.Memo.t
    Domain.DLS.key;
  scaling_workspace : Mm_dvs.Scaling.workspace Domain.DLS.key;
      (** Scratch buffers for the flat DVS kernel; domain-local because
          the workspace is mutable and reused across evaluations. *)
}

type t = {
  omsm : Omsm.t;
  arch : Arch.t;
  tech : Tech_lib.t;
  positions : position array;
  offsets : int array;  (** offsets.(mode) = first position index of the mode. *)
  candidates : Pe.t array array;  (** Per position, in PE id order. *)
  types_by_id : Mm_taskgraph.Task_type.t Int_map.t;
  compiled_ctx : compiled option Atomic.t;
}

exception Invalid of string

let make ~omsm ~arch ~tech =
  let positions =
    List.concat_map
      (fun mode ->
        List.init (Mode.n_tasks mode) (fun task -> { mode = Mode.id mode; task }))
      (Omsm.modes omsm)
    |> Array.of_list
  in
  let offsets = Array.make (Omsm.n_modes omsm) 0 in
  Array.iteri
    (fun i pos -> if pos.task = 0 then offsets.(pos.mode) <- i)
    positions;
  let candidates =
    Array.map
      (fun pos ->
        let graph = Mode.graph (Omsm.mode omsm pos.mode) in
        let ty = Task.ty (Graph.task graph pos.task) in
        let pes = Tech_lib.supported_pes tech ~ty arch in
        if pes = [] then
          raise
            (Invalid
               (Printf.sprintf "task %d of mode %d (type %s) has no candidate PE"
                  pos.task pos.mode
                  (Mm_taskgraph.Task_type.name ty)));
        Array.of_list pes)
      positions
  in
  let types_by_id =
    Mm_taskgraph.Task_type.Set.fold
      (fun ty acc -> Int_map.add (Mm_taskgraph.Task_type.id ty) ty acc)
      (Omsm.all_task_types omsm) Int_map.empty
  in
  {
    omsm;
    arch;
    tech;
    positions;
    offsets;
    candidates;
    types_by_id;
    compiled_ctx = Atomic.make None;
  }

(* Capacity of each domain-local per-mode cache.  Entries are per-mode
   (schedule, scaling, power) triples — the same order of magnitude as
   the whole-genome eval cache's entries, which defaults to 8192. *)
let mode_cache_capacity = 4096

let compile t =
  let n_types =
    Mm_taskgraph.Task_type.Set.fold
      (fun ty acc -> max acc (Mm_taskgraph.Task_type.id ty + 1))
      (Omsm.all_task_types t.omsm) 0
  in
  {
    routes = Mm_sched.Comm_mapping.table t.arch;
    dispatch = Tech_lib.dispatch t.tech ~n_types ~n_pes:(Arch.n_pes t.arch);
    mobility_cache =
      Domain.DLS.new_key (fun () ->
          Mm_parallel.Memo.create ~capacity:mode_cache_capacity ());
    eval_cache =
      Domain.DLS.new_key (fun () ->
          Mm_parallel.Memo.create ~capacity:mode_cache_capacity ());
    scaling_workspace = Domain.DLS.new_key Mm_dvs.Scaling.create_workspace;
  }

let compiled t =
  match Atomic.get t.compiled_ctx with
  | Some c -> c
  | None ->
    let c = compile t in
    if Atomic.compare_and_set t.compiled_ctx None (Some c) then c
    else (
      match Atomic.get t.compiled_ctx with
      | Some c -> c
      | None -> assert false (* the context is only ever set, never cleared *))

let routes c = c.routes
let dispatch c = c.dispatch
let mode_mobility_cache c = Domain.DLS.get c.mobility_cache
let mode_eval_cache c = Domain.DLS.get c.eval_cache
let scaling_workspace c = Domain.DLS.get c.scaling_workspace

let omsm t = t.omsm
let arch t = t.arch
let tech t = t.tech
let n_positions t = Array.length t.positions
let position t i = t.positions.(i)
let index_of t ~mode ~task = t.offsets.(mode) + task
let candidates t i = t.candidates.(i)
let gene_counts t = Array.map Array.length t.candidates

let candidate_index t i ~pe_id =
  let cands = t.candidates.(i) in
  let rec scan k =
    if k >= Array.length cands then None
    else if Pe.id cands.(k) = pe_id then Some k
    else scan (k + 1)
  in
  scan 0

let mode_task_count t mode = Mode.n_tasks (Omsm.mode t.omsm mode)

let task_at t i =
  let pos = t.positions.(i) in
  Graph.task (Mode.graph (Omsm.mode t.omsm pos.mode)) pos.task

let type_of_id t ty_id = Int_map.find_opt ty_id t.types_by_id

let core_area t ~pe ~ty_id =
  match type_of_id t ty_id with
  | None -> 0.0
  | Some ty -> (
    match Tech_lib.find t.tech ~ty ~pe:(Arch.pe t.arch pe) with
    | Some impl -> impl.Tech_lib.area
    | None -> 0.0)
