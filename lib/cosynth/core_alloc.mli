(** Hardware core allocation (paper §4.1, lines 4–6).

    Every task type mapped to a hardware PE needs a core of that type.
    ASIC cores are static: once a type is implemented on an ASIC it
    occupies area in {e every} mode.  FPGA cores can be exchanged at mode
    changes, so their area constraint applies per mode and swapping them
    costs reconfiguration time (handled by {!Transition_time}).

    On top of the one-core-per-type baseline, additional core instances
    are allocated to types whose tasks can run in parallel (overlapping
    ASAP–ALAP execution windows), lowest-mobility types first, as long as
    the area constraint allows — increasing exploitable parallelism and,
    under DVS, the slack available for voltage scaling. *)

type t

val allocate :
  Spec.t ->
  Mapping.t ->
  mobilities:Mm_taskgraph.Mobility.t array ->
  t
(** [mobilities.(mode)] must be the mode's analysis under the same
    mapping. *)

val instances : t -> mode:int -> pe:int -> ty:int -> int
(** Allocated core instances usable by the mode (0 when the type is not
    loaded).  For ASICs this is the static global count. *)

val area_used : t -> pe:int -> float
(** ASIC: total static core area.  FPGA: worst mode's loaded area.
    Software PEs: 0. *)

val area_excess : t -> pe:int -> float
(** max(0, used − capacity). *)

val excess_ratio_sum : t -> float
(** Σ_π excess/capacity over violating hardware PEs — the area penalty's
    raw magnitude. *)

val loaded_types : t -> mode:int -> pe:int -> (int * int) list
(** [(type id, instance count)] loaded on the PE during the mode
    (FPGA: the mode's working set; ASIC: the static set), ascending by
    type id. *)

val area_feasible : t -> bool
