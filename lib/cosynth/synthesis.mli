(** The outer optimisation loop: the mapping/core-allocation GA driving
    the inner scheduling loop (paper §4).

    A single [run] synthesises one implementation candidate set and
    returns the best mapping found, its full evaluation and run
    statistics.  Determinism: equal [seed]s give equal results — also
    across [jobs] and [eval_cache] settings, because fitness evaluation
    is a pure function of the genome and all randomness is consumed
    while breeding, before evaluation batches are dispatched. *)

type robust_usage = {
  model : Mm_energy.Fleet_sim.usage_model;
      (** How per-device Ψ vectors deviate from the published point
          estimate; {!Mm_energy.Fleet_sim.Point} makes the whole option
          a no-op bypass. *)
  samples : int;  (** Ψ samples drawn per run (> 0). *)
  objective : Fitness.robust_objective;
  battery : Mm_energy.Battery.t;
}

type config = {
  fitness : Fitness.config;
  ga : Mm_ga.Engine.config;
  use_improvements : bool;
      (** Disable to ablate the paper's four improvement operators. *)
  restarts : int;
      (** Independent GA restarts per run; the best final fitness wins.
          Restarting is the standard defence against the multi-modal
          mapping landscape (default 2). *)
  jobs : int;
      (** Domains evaluating each generation's offspring batch; [<= 1]
          keeps evaluation on the calling domain (default 1). *)
  eval_cache : int;
      (** Capacity of the genome→evaluation memoization cache shared
          across the run's restarts; [0] disables caching (default
          {!default_eval_cache}). *)
  delta : bool;
      (** Evaluate offspring through {!Fitness.evaluate_delta} when the
          engine knows the genes they differ from their parent in
          (default true).  Delta evaluation is bit-identical to the full
          path, so like [jobs]/[eval_cache] it changes wall time only
          and is absent from {!config_fingerprint}. *)
  audit : bool;
      (** Re-derive the winning evaluation's schedules, DVS math and
          penalty claims through {!Audit.check} and attach the report to
          the result (default false; the [--audit] CLI flag and the test
          suite force it on).  Like [jobs]/[eval_cache], auditing never
          perturbs the synthesis trajectory, so it is absent from
          {!config_fingerprint}. *)
  islands : int;
      (** Number of GA islands per restart (default 1).  With
          [islands > 1] each restart runs {!Mm_ga.Islands.run}: the
          population is sharded into that many independent engines with
          periodic deterministic migration, and [jobs] domains schedule
          whole islands instead of evaluation batches.  Unlike [jobs],
          this {e changes the trajectory} (a sharded search explores
          differently), so it is part of {!config_fingerprint} whenever
          it is active. *)
  migration_interval : int;
      (** Generations between migration epochs (default 8); only
          meaningful with [islands > 1], fingerprinted with it. *)
  migration_count : int;
      (** Members each island exports per epoch (default 2); only
          meaningful with [islands > 1], fingerprinted with it. *)
  robust : robust_usage option;
      (** Opt-in synthesis under usage uncertainty (default [None]): the
          run draws [samples] Ψ vectors from the usage model — from a
          dedicated child stream of the run seed, so resumes re-derive
          them exactly — and minimises {!Fitness.robust_power} over them
          instead of the point-Ψ average.  A [Point] model is bypassed
          entirely and bit-identical to [None].  Part of
          {!config_fingerprint} exactly when active. *)
}

val default_config : config

val default_eval_cache : int
(** 8192 entries — a few dozen converged mul-scale GA runs' worth. *)

type result = {
  genome : int array;
  eval : Fitness.eval;
  generations : int;
  evaluations : int;  (** Fitness-pipeline invocations (cache hits excluded). *)
  cache_hits : int;  (** Evaluations answered by the memo cache. *)
  cpu_seconds : float;
      (** Process CPU time of the run (the paper's "CPU time" column).
          With [jobs > 1] this sums time across domains and can exceed
          wall-clock time. *)
  history : float list;  (** Best fitness trajectory. *)
  audit : Audit.report option;
      (** Present iff [config.audit]; a dirty report is attached, never
          raised. *)
}

val software_anchors : Spec.t -> int array list
(** Known-good genomes mapping every task onto software PEs (all on the
    first software PE, and round-robin across them); injected into the
    GA's initial population so the search starts from a zero-area,
    zero-reconfiguration candidate.  Empty when the architecture has no
    software PE. *)

val greedy_timing_anchor : Spec.t -> int array option
(** A constructively repaired anchor for specifications whose
    all-software mapping misses deadlines (e.g. the smart phone's MP3
    mode): starting from the serial software mapping, repeatedly move the
    longest-running software task of a deadline-missing mode onto its
    fastest hardware implementation until the candidate is
    timing-feasible (or no move remains).  [None] when there is no
    software anchor to start from. *)

val anchors : Spec.t -> int array list
(** {!software_anchors} plus {!greedy_timing_anchor}, deduplicated — the
    initial genomes every synthesis run is seeded with. *)

type cache = (float * Fitness.eval) Mm_parallel.Memo.t
(** The genome→evaluation memoization cache a run evaluates through. *)

(** {2 Checkpoint & resume}

    A synthesis run can be checkpointed at every GA generation boundary
    and resumed later with a bit-identical trajectory (final fitness
    equal by [Int64.bits_of_float]).  The run state is a plain data
    value; persisting it is the caller's business ({!Mm_io.Snapshot}
    provides the versioned file codec), which keeps this library free of
    I/O concerns. *)

type restart_summary = {
  r_genome : int array;
  r_fitness : float;
  r_generations : int;
  r_evaluations : int;
  r_cache_hits : int;
  r_history : float list;
}
(** What a completed GA restart contributes to the final result.  The
    full {!Fitness.eval} is not stored: evaluation is pure, so the
    winning genome's evaluation can always be recomputed bit-for-bit. *)

type run_state = {
  seed : int;  (** The seed the interrupted run was started with. *)
  fingerprint : string;
      (** {!config_fingerprint} of the interrupted run's configuration;
          resume refuses a mismatch. *)
  next_restart : int;  (** Index of the restart to run (or continue) next. *)
  completed : restart_summary list;
      (** Summaries of restarts [0 .. next_restart - 1], oldest first. *)
  outer_rng : int64;
      (** The outer PRNG stream: the post-split state when [engine]
          holds an in-flight restart, the pre-split state of restart
          [next_restart] otherwise. *)
  engine : engine_state option;
      (** The in-flight restart's generation-boundary state, or [None]
          for a checkpoint taken between restarts. *)
}
(** Full synthesis run state at a checkpoint boundary. *)

and engine_state =
  | Single of Mm_ga.Engine.checkpoint
      (** A plain single-population restart ([config.islands <= 1]). *)
  | Sharded of Mm_ga.Islands.checkpoint
      (** An island-model restart, captured at a migration-epoch
          boundary.  The config fingerprint pins which variant a
          snapshot may carry, so a resume can never feed one shape into
          the other. *)

type checkpoint_sink = {
  every : int;  (** Emit a within-restart checkpoint every N generations. *)
  save : run_state -> unit;
}
(** Where checkpoints go.  [save] is called with the current state every
    [every] generations and once after each completed restart; each call
    is wrapped in a [synthesis/checkpoint] probe span. *)

type progress = {
  p_restart : int;
  p_generation : int;  (** Completed generations within that restart. *)
  p_best_fitness : float;
  p_evaluations : int;
  p_cache_hits : int;
}
(** What the [yield] hook of {!run} sees at every generation boundary
    (and once more after each completed restart). *)

val config_fingerprint : config -> string
(** A stable digest of every configuration field that can alter the
    synthesis trajectory for a given seed ([jobs] and [eval_cache] are
    excluded — the evaluation strategy never perturbs results).  Stored
    in {!run_state} and checked on resume. *)

val robust_active : config -> bool
(** Whether the robust objective actually changes the trajectory: a
    [robust] option with a [Point] model is a bypass and reports
    [false]. *)

val effective_fitness_config : config -> spec:Spec.t -> seed:int -> Fitness.config
(** The fitness configuration {!run} actually evaluates with: when
    {!robust_active}, [config.fitness] with the Ψ samples materialised
    from the run seed's dedicated child stream (a pure function of seed
    and model, so callers replaying a run's genomes — the experiment
    harness, the auditor — reproduce the exact fitness).  Raises
    [Invalid_argument] on a malformed model or non-positive sample
    count. *)

val run :
  ?config:config ->
  ?cache:cache ->
  ?checkpoint:checkpoint_sink ->
  ?resume:run_state ->
  ?yield:(progress -> unit) ->
  ?pool:Mm_parallel.Pool.t ->
  spec:Spec.t ->
  seed:int ->
  unit ->
  result
(** [cache] supplies an external memoization cache instead of the
    per-run one [config.eval_cache] would create — the experiment
    harness shares one cache across an arm's repeated runs (and resets
    its statistics between them, see {!Mm_parallel.Memo.reset_stats}).
    Because evaluation is pure and cached values are exact, a shared
    cache never changes a synthesised result, only the evaluation
    counts.

    [checkpoint] streams {!run_state} values to a sink during the run;
    [resume] continues from one instead of starting fresh.  A resumed
    run reproduces the uninterrupted run's result bit-for-bit (except
    [evaluations]/[cache_hits]/[cpu_seconds], which additionally count
    the restore work).  Raises [Invalid_argument] when the state's seed,
    configuration fingerprint, or restart bookkeeping does not match
    this run.

    [yield] is the cooperative-multiplexing hook: called after every
    completed generation (after any due checkpoint has been persisted,
    so on-disk state is current at every suspension point) and once
    after each completed restart.  It may suspend the run arbitrarily
    long — or never return, if the caller abandons the coroutine.  Like
    [jobs], it never perturbs the trajectory and is absent from
    {!config_fingerprint}.

    [pool] makes evaluation batches run on an externally owned worker
    pool instead of a run-private one; the run never shuts it down, so
    one bounded pool can serve many multiplexed runs. *)

val average_power : result -> float
(** The result's average power under the true mode probabilities. *)
