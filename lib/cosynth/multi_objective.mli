(** Multi-objective co-synthesis: the power/area trade-off in one run.

    {!Pareto} explores the trade-off extrinsically (re-synthesising
    against scaled architectures); this module explores it intrinsically,
    running NSGA-II over the multi-mode mapping string with two minimised
    objectives:

    + average power under the true mode execution probabilities,
    + total hardware core area actually used,

    both multiplied by the same infeasibility boost as the
    single-objective fitness so infeasible candidates never enter the
    returned front while the search can still traverse them. *)

type point = {
  genome : int array;
  power : float;  (** True average power (W). *)
  area : float;  (** Σ hardware core area used (cells). *)
  eval : Fitness.eval;
}

type result = {
  front : point list;  (** Feasible non-dominated points, ascending area. *)
  generations : int;
  evaluations : int;
}

val optimise :
  ?config:Mm_ga.Nsga2.config ->
  ?fitness:Fitness.config ->
  spec:Spec.t ->
  seed:int ->
  unit ->
  result
(** [fitness] controls DVS and the scheduler policy; its weighting is
    forced to [True_probabilities] (the power objective). *)
