(** Robustness of an implementation to usage-profile drift.

    The paper concedes that "in reality the mode probabilities vary from
    user to user" and relies on an average profile (§2.1.1).  This module
    quantifies the exposure: it perturbs the published probability vector
    (log-normal noise, renormalised) and re-weights the implementation's
    fixed per-mode powers under each sample — the per-mode powers of a
    given mapping do not depend on Ψ, so the analysis needs exactly one
    fitness evaluation regardless of sample count.

    The interesting comparison is {!compare_mappings}: a
    probability-aware implementation is tuned to the average profile, so
    how much of its advantage over the probability-neglecting baseline
    survives when real users deviate from that average? *)

type report = {
  nominal : float;  (** Power under the published profile (W). *)
  mean : float;  (** Mean over perturbed profiles. *)
  std : float;
  worst : float;
  best : float;
  samples : int;
}

val analyse :
  ?samples:int ->
  ?strength:float ->
  ?fitness:Fitness.config ->
  spec:Spec.t ->
  mapping:Mapping.t ->
  seed:int ->
  unit ->
  report
(** [samples] defaults to 1000; [strength] (the σ of the log-normal
    factor on each Ψ_i) to 0.3.  Raises [Invalid_argument] on a
    non-positive sample count or negative strength. *)

type comparison = {
  baseline : report;
  proposed : report;
  wins : int;  (** Perturbed profiles under which the proposed mapping uses less power. *)
}

val compare_mappings :
  ?samples:int ->
  ?strength:float ->
  ?fitness:Fitness.config ->
  spec:Spec.t ->
  baseline:Mapping.t ->
  proposed:Mapping.t ->
  seed:int ->
  unit ->
  comparison
(** Both mappings are evaluated under the {e same} perturbed profiles
    (paired sampling). *)
