(** Fitness evaluation of multi-mode mapping candidates (paper Fig. 4,
    lines 03–14).

    Pipeline per candidate: decode genome → per-mode mobility analysis →
    core allocation (+ area penalty) → per-mode communication mapping and
    list scheduling → optional voltage scaling → dynamic and static power
    → transition times → fitness

    F_M = p̄ · timing_factor · area_factor · transition_factor ·
          routability_factor,

    every factor >= 1, so a fully feasible candidate's fitness is exactly
    its average power under the configured weighting.

    The {e weighting} distinguishes the paper's two compared approaches:
    [True_probabilities] optimises Eq. (1) with the real mode execution
    probabilities; [Uniform] neglects them (every mode weighted 1/|Ω|),
    exactly reproducing the baseline columns of Tables 1–3.  Reported
    [true_power] is always evaluated under the real probabilities. *)

type weighting = True_probabilities | Uniform

type dvs = No_dvs | Dvs of Mm_dvs.Scaling.config

type penalties = {
  timing : float;
  area : float;
  transition : float;
  unroutable : float;
}

val default_penalties : penalties

type robust_objective =
  | Expected_lifetime
      (** Minimise the power equivalent of the mean battery life over
          the Ψ samples. *)
  | Percentile of float
      (** Optimise a low lifetime percentile (e.g. [Percentile 0.1] for
          p10 — the worst-served decile of the fleet); must be in
          (0, 1]. *)

type robust = {
  psis : float array array;  (** Ψ samples drawn from the usage model. *)
  battery : Mm_energy.Battery.t;
  objective : robust_objective;
}

type config = {
  weighting : weighting;
  dvs : dvs;
  penalties : penalties;
  scheduler_policy : Mm_sched.List_scheduler.policy;
      (** Priority policy of the inner-loop list scheduler (default
          [Mobility_first]); the ablation bench uses this to show the
          baseline-vs-proposed comparison is insensitive to the inner
          loop, supporting DESIGN.md §3's substitution argument. *)
  robust : robust option;
      (** When set, the fitness objective becomes {!robust_power} over
          the Ψ samples instead of the point-Ψ [eval_power]; the penalty
          factors and every reported [eval] field are unchanged.
          [None] (the default) is bit-identical to the seed formula. *)
}

val default_config : config
(** True probabilities, no DVS, default penalties, mobility-first
    scheduling, no robust objective. *)

val robust_power : robust -> Mm_energy.Power.mode_power array -> float
(** The scalar a robust run minimises: Eq. 1 evaluated per Ψ sample,
    summarised per the objective.  [Percentile q] picks the power of the
    q-th worst lifetime (no battery inversion needed — lifetime is
    strictly decreasing in power); [Expected_lifetime] maps the mean of
    the per-sample lifetimes back to a power through
    {!Mm_energy.Battery.power_for_lifetime}.  Exposed so the auditor can
    re-derive the fitness claim with the exact same float path. *)

type eval = {
  fitness : float;
  eval_power : float;  (** Average power under [config.weighting] (W). *)
  true_power : float;  (** Average power under the OMSM probabilities (W). *)
  timing_factor : float;
  area_factor : float;
  transition_factor : float;
  routability_factor : float;
  timing_feasible : bool;
  area_feasible : bool;
  transition_feasible : bool;
  routable : bool;
  mode_powers : Mm_energy.Power.mode_power array;
  schedules : Mm_sched.Schedule.t array;
  scalings : Mm_dvs.Scaling.t array;
  alloc : Core_alloc.t;
  transition_times : Transition_time.entry list;
  mapping : Mapping.t;
  mobilities : Mm_taskgraph.Mobility.t array;
      (** Per-mode mobility analyses; carried so {!evaluate_delta} can
          reuse them for modes a mutation did not touch. *)
}

val feasible : eval -> bool
(** All four feasibility flags. *)

val evaluate : config -> Spec.t -> int array -> eval
(** Full evaluation of a genome.  Runs against the specification's
    compile-once context ({!Spec.compiled}): route table, dense
    technology dispatch, and the per-mode mobility and
    (schedule, scaling, power) caches, so offspring that mutate only
    some modes answer the untouched modes from cache.  Bit-identical to
    {!evaluate_reference} (enforced by the equivalence tests;
    DESIGN.md §10). *)

val evaluate_mapping : config -> Spec.t -> Mapping.t -> eval
(** Evaluate an explicit mapping (used by examples and tests). *)

val evaluate_reference : config -> Spec.t -> int array -> eval
(** The seed pipeline — per-edge routing, balanced-tree technology
    lookups, the reference scheduler, no caches — kept as the
    equivalence oracle and the "before" side of the [bench eval]
    comparison. *)

val evaluate_mapping_reference : config -> Spec.t -> Mapping.t -> eval
(** {!evaluate_reference} for an explicit mapping. *)

val evaluate_delta :
  config -> Spec.t -> parent:eval -> dirty:int list -> int array -> eval
(** Incremental evaluation of a genome that differs from the already
    evaluated [parent] exactly at the genome positions in [dirty]
    (ascending; typically reported by
    [Mm_ga.Genome.point_mutate_tracked] or [Mm_ga.Genome.diff]).
    Bit-identical to {!evaluate} (enforced by the delta equivalence
    tests): modes untouched by [dirty] reuse the parent's mobility
    analysis and (schedule, scaling, power) triple; dirty modes run the
    full compiled per-mode path.  Core allocation is global and always
    recomputed; a clean mode whose granted core-instance signature moved
    is promoted to dirty.  Falls back to the full {!evaluate} path when
    more than half the modes end up dirty.  An over-approximate [dirty]
    set (genes listed but unchanged) is safe; an under-approximate one
    is not. *)

val evaluate_mapping_delta :
  config -> Spec.t -> eval -> dirty:int list -> Mapping.t -> eval
(** {!evaluate_delta} for an explicit mapping. *)
