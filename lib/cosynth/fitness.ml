module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Mobility = Mm_taskgraph.Mobility
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Schedule = Mm_sched.Schedule
module List_scheduler = Mm_sched.List_scheduler
module Comm_mapping = Mm_sched.Comm_mapping
module Scaling = Mm_dvs.Scaling
module Power = Mm_energy.Power

(* Per-phase probes of the fitness pipeline (paper Fig. 4's inner loop):
   with metrics on, each phase feeds a latency histogram; with fine
   tracing on, each phase is a span nested under "fitness/eval".  All
   fine-grained — thousands of evaluations per GA run would swamp a
   coarse trace. *)
let p_eval = Mm_obs.Probe.create ~fine:true "fitness/eval"
let p_mobility = Mm_obs.Probe.create ~fine:true "fitness/mobility"
let p_alloc = Mm_obs.Probe.create ~fine:true "fitness/core_alloc"
let p_schedule = Mm_obs.Probe.create ~fine:true "fitness/schedule"
let p_dvs = Mm_obs.Probe.create ~fine:true "fitness/dvs"
let p_power = Mm_obs.Probe.create ~fine:true "fitness/power"

type weighting = True_probabilities | Uniform

type dvs = No_dvs | Dvs of Scaling.config

type penalties = {
  timing : float;
  area : float;
  transition : float;
  unroutable : float;
}

let default_penalties = { timing = 20.0; area = 20.0; transition = 20.0; unroutable = 100.0 }

type config = {
  weighting : weighting;
  dvs : dvs;
  penalties : penalties;
  scheduler_policy : List_scheduler.policy;
}

let default_config =
  {
    weighting = True_probabilities;
    dvs = No_dvs;
    penalties = default_penalties;
    scheduler_policy = List_scheduler.Mobility_first;
  }

type eval = {
  fitness : float;
  eval_power : float;
  true_power : float;
  timing_factor : float;
  area_factor : float;
  transition_factor : float;
  routability_factor : float;
  timing_feasible : bool;
  area_feasible : bool;
  transition_feasible : bool;
  routable : bool;
  mode_powers : Power.mode_power array;
  schedules : Schedule.t array;
  scalings : Scaling.t array;
  alloc : Core_alloc.t;
  transition_times : Transition_time.entry list;
  mapping : Mapping.t;
}

let feasible e = e.timing_feasible && e.area_feasible && e.transition_feasible && e.routable

let mode_mobility spec mapping mode =
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let mode_rec = Omsm.mode omsm mode in
  let graph = Mode.graph mode_rec in
  let per_task = (mapping : Mapping.t :> int array array).(mode) in
  let exec_time task =
    let pe = Arch.pe arch per_task.(Task.id task) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.exec_time
  in
  let comm_time (e : Graph.edge) =
    match
      Comm_mapping.route arch ~src_pe:per_task.(e.src) ~dst_pe:per_task.(e.dst)
        ~data:e.data
    with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  Mobility.compute graph ~exec_time ~comm_time ~horizon:(Mode.period mode_rec)

let evaluate_mapping config spec mapping =
  Mm_obs.Probe.run p_eval @@ fun () ->
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let n_modes = Omsm.n_modes omsm in
  let mobilities =
    Mm_obs.Probe.run p_mobility (fun () ->
        Array.init n_modes (mode_mobility spec mapping))
  in
  let alloc =
    Mm_obs.Probe.run p_alloc (fun () -> Core_alloc.allocate spec mapping ~mobilities)
  in
  let schedules =
    Mm_obs.Probe.run p_schedule (fun () ->
        Array.init n_modes (fun mode ->
            let mode_rec = Omsm.mode omsm mode in
            List_scheduler.run ~policy:config.scheduler_policy
              {
                List_scheduler.mode_id = mode;
                graph = Mode.graph mode_rec;
                arch;
                tech;
                mapping = (mapping : Mapping.t :> int array array).(mode);
                instances =
                  (fun ~pe ~ty -> max 1 (Core_alloc.instances alloc ~mode ~pe ~ty));
                period = Mode.period mode_rec;
              }))
  in
  let scalings =
    Mm_obs.Probe.run p_dvs (fun () ->
        Array.init n_modes (fun mode ->
            let graph = Mode.graph (Omsm.mode omsm mode) in
            match config.dvs with
            | No_dvs -> Scaling.nominal ~graph ~arch ~tech ~schedule:schedules.(mode) ()
            | Dvs scaling_config ->
              Scaling.run ~config:scaling_config ~graph ~arch ~tech
                ~schedule:schedules.(mode) ()))
  in
  (* Timing: post-compaction / post-scaling finish times against
     min(deadline, period), normalised by the period. *)
  let timing_violation = ref 0.0 in
  for mode = 0 to n_modes - 1 do
    let mode_rec = Omsm.mode omsm mode in
    let graph = Mode.graph mode_rec in
    let period = Mode.period mode_rec in
    Array.iteri
      (fun task finish ->
        let bound =
          match Task.deadline (Graph.task graph task) with
          | None -> period
          | Some d -> Float.min d period
        in
        let excess = finish -. bound in
        if excess > 1e-9 then timing_violation := !timing_violation +. (excess /. period))
      scalings.(mode).Scaling.stretched_finish
  done;
  let mode_powers =
    Mm_obs.Probe.run p_power (fun () ->
        Array.init n_modes (fun mode ->
            Power.mode_power ~arch ~schedule:schedules.(mode)
              ~dyn_energy:scalings.(mode).Scaling.total_dyn_energy))
  in
  let true_probabilities =
    Array.init n_modes (fun mode -> Mode.probability (Omsm.mode omsm mode))
  in
  let eval_probabilities =
    match config.weighting with
    | True_probabilities -> true_probabilities
    | Uniform -> Array.make n_modes (1.0 /. float_of_int n_modes)
  in
  let true_power = Power.average ~probabilities:true_probabilities mode_powers in
  let eval_power = Power.average ~probabilities:eval_probabilities mode_powers in
  let transition_times = Transition_time.compute spec alloc in
  let unroutable_count =
    Array.fold_left
      (fun acc s -> acc + List.length s.Schedule.unroutable)
      0 schedules
  in
  let timing_factor = 1.0 +. (config.penalties.timing *. !timing_violation) in
  let area_factor = 1.0 +. (config.penalties.area *. Core_alloc.excess_ratio_sum alloc) in
  let transition_factor =
    1.0 +. (config.penalties.transition *. Transition_time.violation_sum transition_times)
  in
  let routability_factor =
    1.0 +. (config.penalties.unroutable *. float_of_int unroutable_count)
  in
  let timing_feasible = !timing_violation <= 1e-12 in
  let area_feasible = Core_alloc.area_feasible alloc in
  let transition_feasible = Transition_time.feasible transition_times in
  let routable = unroutable_count = 0 in
  let raw_fitness =
    eval_power *. timing_factor *. area_factor *. transition_factor
    *. routability_factor
  in
  (* Infeasible candidates must never outrank feasible ones, however small
     their power (hardware energies can undercut software ones by three
     orders of magnitude, which multiplicative penalties alone cannot
     bridge); the factors still grade infeasible candidates against each
     other so the GA can climb back into the feasible region. *)
  let fitness =
    if timing_feasible && area_feasible && transition_feasible && routable then
      raw_fitness
    else raw_fitness *. 1e6
  in
  {
    fitness;
    eval_power;
    true_power;
    timing_factor;
    area_factor;
    transition_factor;
    routability_factor;
    timing_feasible;
    area_feasible;
    transition_feasible;
    routable;
    mode_powers;
    schedules;
    scalings;
    alloc;
    transition_times;
    mapping;
  }

let evaluate config spec genome =
  evaluate_mapping config spec (Mapping.of_genome spec genome)
