module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Mobility = Mm_taskgraph.Mobility
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Tech_lib = Mm_arch.Tech_lib
module Schedule = Mm_sched.Schedule
module List_scheduler = Mm_sched.List_scheduler
module Comm_mapping = Mm_sched.Comm_mapping
module Scaling = Mm_dvs.Scaling
module Power = Mm_energy.Power
module Memo = Mm_parallel.Memo
module Metrics = Mm_obs.Metrics

(* Per-phase probes of the fitness pipeline (paper Fig. 4's inner loop):
   with metrics on, each phase feeds a latency histogram; with fine
   tracing on, each phase is a span nested under "fitness/eval".  All
   fine-grained — thousands of evaluations per GA run would swamp a
   coarse trace. *)
let p_eval = Mm_obs.Probe.create ~fine:true "fitness/eval"
let p_mobility = Mm_obs.Probe.create ~fine:true "fitness/mobility"
let p_alloc = Mm_obs.Probe.create ~fine:true "fitness/core_alloc"
let p_schedule = Mm_obs.Probe.create ~fine:true "fitness/schedule"
let p_dvs = Mm_obs.Probe.create ~fine:true "fitness/dvs"
let p_power = Mm_obs.Probe.create ~fine:true "fitness/power"

(* Per-mode cache traffic (DESIGN.md §10): offspring that mutate only
   some modes answer the untouched modes from the compiled context's
   caches.  Counters rather than Memo-internal stats so `synth
   --metrics` and the report can show them without holding the cache. *)
let c_mode_hit = Metrics.counter "fitness/mode_cache_hits"
let c_mode_miss = Metrics.counter "fitness/mode_cache_misses"
let c_mob_hit = Metrics.counter "fitness/mobility_cache_hits"
let c_mob_miss = Metrics.counter "fitness/mobility_cache_misses"

(* Delta evaluation traffic (DESIGN.md §13): how often the incremental
   path ran, how often it had to fall back to the full compiled path,
   and how many per-mode triples it lifted straight from the parent. *)
let c_delta_evals = Metrics.counter "fitness/delta_evals"
let c_delta_fallbacks = Metrics.counter "fitness/delta_fallbacks"
let c_delta_mode_reuse = Metrics.counter "fitness/delta_mode_reuse"
let g_route_pairs = Metrics.gauge "sched/route_table_pairs"
let g_route_entries = Metrics.gauge "sched/route_table_entries"

type weighting = True_probabilities | Uniform

type dvs = No_dvs | Dvs of Scaling.config

type penalties = {
  timing : float;
  area : float;
  transition : float;
  unroutable : float;
}

let default_penalties = { timing = 20.0; area = 20.0; transition = 20.0; unroutable = 100.0 }

type robust_objective = Expected_lifetime | Percentile of float

type robust = {
  psis : float array array;
  battery : Mm_energy.Battery.t;
  objective : robust_objective;
}

type config = {
  weighting : weighting;
  dvs : dvs;
  penalties : penalties;
  scheduler_policy : List_scheduler.policy;
  robust : robust option;
}

let default_config =
  {
    weighting = True_probabilities;
    dvs = No_dvs;
    penalties = default_penalties;
    scheduler_policy = List_scheduler.Mobility_first;
    robust = None;
  }

(* The scalar a robust run minimises: a power figure summarising the
   battery-life distribution over the Ψ samples, so it composes with the
   multiplicative penalty factors exactly like [eval_power] does.
   Percentile objectives need no lifetime inversion at all — lifetime is
   strictly decreasing in power, so the q-th worst lifetime is the
   (1−q)-th highest power; sorting powers descending keeps the selection
   exact even for samples whose power would be non-positive. *)
let robust_power r mode_powers =
  let n = Array.length r.psis in
  if n = 0 then invalid_arg "Fitness: robust Ψ sample set is empty";
  let powers = Array.map (fun psi -> Power.average ~probabilities:psi mode_powers) r.psis in
  match r.objective with
  | Percentile q ->
    if not (q > 0.0 && q <= 1.0) then
      invalid_arg "Fitness: robust percentile must be in (0, 1]";
    Array.sort (fun a b -> compare b a) powers;
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    powers.(max 0 (min (n - 1) rank))
  | Expected_lifetime ->
    let battery = r.battery in
    let total_hours =
      Array.fold_left
        (fun acc p ->
          acc
          +.
          if p > 0.0 then Mm_energy.Battery.lifetime_hours battery ~average_power:p
          else Float.infinity)
        0.0 powers
    in
    let mean_hours = total_hours /. float_of_int n in
    if Float.is_finite mean_hours && mean_hours > 0.0 then
      Mm_energy.Battery.power_for_lifetime battery ~hours:mean_hours
    else 0.0

type eval = {
  fitness : float;
  eval_power : float;
  true_power : float;
  timing_factor : float;
  area_factor : float;
  transition_factor : float;
  routability_factor : float;
  timing_feasible : bool;
  area_feasible : bool;
  transition_feasible : bool;
  routable : bool;
  mode_powers : Power.mode_power array;
  schedules : Schedule.t array;
  scalings : Scaling.t array;
  alloc : Core_alloc.t;
  transition_times : Transition_time.entry list;
  mapping : Mapping.t;
  mobilities : Mobility.t array;
      (** Per-mode mobility analyses; carried so {!evaluate_delta} can
          reuse them for modes a mutation did not touch. *)
}

let feasible e = e.timing_feasible && e.area_feasible && e.transition_feasible && e.routable

let mode_mobility spec mapping mode =
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let mode_rec = Omsm.mode omsm mode in
  let graph = Mode.graph mode_rec in
  let per_task = (mapping : Mapping.t :> int array array).(mode) in
  let exec_time task =
    let pe = Arch.pe arch per_task.(Task.id task) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.exec_time
  in
  let comm_time (e : Graph.edge) =
    match
      Comm_mapping.route arch ~src_pe:per_task.(e.src) ~dst_pe:per_task.(e.dst)
        ~data:e.data
    with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  Mobility.compute graph ~exec_time ~comm_time ~horizon:(Mode.period mode_rec)

(* The same analysis against the compiled context: dense dispatch for
   execution times, the route table for communication times, each edge
   routed once.  Bit-identical to [mode_mobility]. *)
let compiled_mode_mobility spec ~routes ~dispatch row mode =
  let mode_rec = Omsm.mode (Spec.omsm spec) mode in
  let graph = Mode.graph mode_rec in
  let exec =
    Array.init (Graph.n_tasks graph) (fun i ->
        let task = Graph.task graph i in
        match
          Tech_lib.dispatch_find dispatch
            ~ty_id:(Task_type.id (Task.ty task))
            ~pe_id:row.(i)
        with
        | Some impl -> impl.Tech_lib.exec_time
        | None -> raise Not_found)
  in
  let decisions =
    Array.init (Graph.n_edges graph) (fun id ->
        let e = Graph.edge graph id in
        Comm_mapping.route_via routes ~src_pe:row.(e.src) ~dst_pe:row.(e.dst)
          ~data:e.data)
  in
  let comm_time id =
    match decisions.(id) with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  Mobility.compute_indexed graph ~exec ~comm_time ~horizon:(Mode.period mode_rec)

(* Cache-key ingredients.  The per-mode caches answer (schedule,
   scaling, power) triples, which depend on the mode's mapping row, the
   mode's granted core instances, the scheduler policy and the DVS
   configuration — but not on weighting or penalties (those only shape
   the factors computed from the triples). *)
let config_fingerprint config =
  let policy =
    match config.scheduler_policy with
    | List_scheduler.Mobility_first -> 0
    | List_scheduler.Critical_path_first -> 1
    | List_scheduler.Topological -> 2
  in
  match config.dvs with
  | No_dvs -> [| policy; 0; 0; 0; 0 |]
  | Dvs c ->
    [|
      policy;
      1;
      Bool.to_int c.Scaling.scale_software;
      Bool.to_int c.Scaling.scale_hardware;
      (match c.Scaling.strategy with
      | Scaling.Greedy_gradient -> 0
      | Scaling.Even_slack -> 1);
    |]

let mobility_key ~mode row = Array.append [| mode |] row

(* (mode, config fingerprint, row, granted instances of the mode).  The
   instance signature must be part of the key because core allocation is
   global: a mutation in one mode can change the instances granted to
   another (shared area, ASIC replication). *)
let eval_key ~fingerprint ~arch ~alloc ~mode row =
  let signature = ref [] in
  for pe = Arch.n_pes arch - 1 downto 0 do
    if Pe.is_hardware (Arch.pe arch pe) then
      List.iter
        (fun (ty, count) -> signature := pe :: ty :: count :: !signature)
        (Core_alloc.loaded_types alloc ~mode ~pe)
  done;
  Array.concat [ [| mode |]; fingerprint; row; Array.of_list !signature ]

(* Everything downstream of the per-mode triples: timing violations,
   powers averaged under the mode probabilities, penalty factors and the
   final fitness.  Shared verbatim by the compiled and the reference
   pipelines so they can only differ in how the triples are produced. *)
let assemble config spec mapping ~alloc ~mobilities ~schedules ~scalings ~mode_powers =
  let omsm = Spec.omsm spec in
  let n_modes = Omsm.n_modes omsm in
  (* Timing: post-compaction / post-scaling finish times against
     min(deadline, period), normalised by the period. *)
  let timing_violation = ref 0.0 in
  for mode = 0 to n_modes - 1 do
    let mode_rec = Omsm.mode omsm mode in
    let graph = Mode.graph mode_rec in
    let period = Mode.period mode_rec in
    Array.iteri
      (fun task finish ->
        let bound =
          match Task.deadline (Graph.task graph task) with
          | None -> period
          | Some d -> Float.min d period
        in
        let excess = finish -. bound in
        if excess > 1e-9 then timing_violation := !timing_violation +. (excess /. period))
      scalings.(mode).Scaling.stretched_finish
  done;
  let true_probabilities =
    Array.init n_modes (fun mode -> Mode.probability (Omsm.mode omsm mode))
  in
  let eval_probabilities =
    match config.weighting with
    | True_probabilities -> true_probabilities
    | Uniform -> Array.make n_modes (1.0 /. float_of_int n_modes)
  in
  let true_power = Power.average ~probabilities:true_probabilities mode_powers in
  let eval_power = Power.average ~probabilities:eval_probabilities mode_powers in
  let transition_times = Transition_time.compute spec alloc in
  let unroutable_count =
    Array.fold_left
      (fun acc s -> acc + List.length s.Schedule.unroutable)
      0 schedules
  in
  let timing_factor = 1.0 +. (config.penalties.timing *. !timing_violation) in
  let area_factor = 1.0 +. (config.penalties.area *. Core_alloc.excess_ratio_sum alloc) in
  let transition_factor =
    1.0 +. (config.penalties.transition *. Transition_time.violation_sum transition_times)
  in
  let routability_factor =
    1.0 +. (config.penalties.unroutable *. float_of_int unroutable_count)
  in
  let timing_feasible = !timing_violation <= 1e-12 in
  let area_feasible = Core_alloc.area_feasible alloc in
  let transition_feasible = Transition_time.feasible transition_times in
  let routable = unroutable_count = 0 in
  (* Robust mode swaps the point-Ψ power for a distribution summary; the
     penalty factors are unchanged, and [robust = None] leaves the
     product bit-identical to the seed formula. *)
  let objective_power =
    match config.robust with
    | None -> eval_power
    | Some r -> robust_power r mode_powers
  in
  let raw_fitness =
    objective_power *. timing_factor *. area_factor *. transition_factor
    *. routability_factor
  in
  (* Infeasible candidates must never outrank feasible ones, however small
     their power (hardware energies can undercut software ones by three
     orders of magnitude, which multiplicative penalties alone cannot
     bridge); the factors still grade infeasible candidates against each
     other so the GA can climb back into the feasible region. *)
  let fitness =
    if timing_feasible && area_feasible && transition_feasible && routable then
      raw_fitness
    else raw_fitness *. 1e6
  in
  {
    fitness;
    eval_power;
    true_power;
    timing_factor;
    area_factor;
    transition_factor;
    routability_factor;
    timing_feasible;
    area_feasible;
    transition_feasible;
    routable;
    mode_powers;
    schedules;
    scalings;
    alloc;
    transition_times;
    mapping;
    mobilities;
  }

let scaling_of config ?workspace ?dispatch ~graph ~arch ~tech ~schedule () =
  match config.dvs with
  | No_dvs -> Scaling.nominal ?workspace ?dispatch ~graph ~arch ~tech ~schedule ()
  | Dvs scaling_config ->
    Scaling.run ~config:scaling_config ?workspace ?dispatch ~graph ~arch ~tech
      ~schedule ()

(* The seed DVS pipeline, for the reference oracle below. *)
let scaling_of_reference config ~graph ~arch ~tech ~schedule =
  match config.dvs with
  | No_dvs -> Scaling.nominal_reference ~graph ~arch ~tech ~schedule ()
  | Dvs scaling_config ->
    Scaling.run_reference ~config:scaling_config ~graph ~arch ~tech ~schedule ()

let evaluate_mapping config spec mapping =
  Mm_obs.Probe.run p_eval @@ fun () ->
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let n_modes = Omsm.n_modes omsm in
  let ctx = Spec.compiled spec in
  let routes = Spec.routes ctx in
  let dispatch = Spec.dispatch ctx in
  Metrics.set g_route_pairs (float_of_int (Comm_mapping.table_pairs routes));
  Metrics.set g_route_entries (float_of_int (Comm_mapping.table_entries routes));
  let rows = (mapping : Mapping.t :> int array array) in
  let mobility_cache = Spec.mode_mobility_cache ctx in
  let eval_cache = Spec.mode_eval_cache ctx in
  (* One evaluation touches one entry per mode in each cache.  Pinning
     the entries it finds or inserts keeps a later mode's insertion from
     evicting an earlier mode's — at small capacities an evaluation
     would otherwise invalidate its own working set, so the very next
     evaluation of the same mapping misses again. *)
  Fun.protect ~finally:(fun () ->
      Memo.unpin_all mobility_cache;
      Memo.unpin_all eval_cache)
  @@ fun () ->
  let mobilities =
    Mm_obs.Probe.run p_mobility (fun () ->
        Array.init n_modes (fun mode ->
            let key = mobility_key ~mode rows.(mode) in
            match Memo.find ~pin:true mobility_cache key with
            | Some m ->
              Metrics.incr c_mob_hit;
              m
            | None ->
              Metrics.incr c_mob_miss;
              let m = compiled_mode_mobility spec ~routes ~dispatch rows.(mode) mode in
              Memo.add ~pin:true mobility_cache key m;
              m))
  in
  let alloc =
    Mm_obs.Probe.run p_alloc (fun () -> Core_alloc.allocate spec mapping ~mobilities)
  in
  let fingerprint = config_fingerprint config in
  let keys =
    Array.init n_modes (fun mode ->
        eval_key ~fingerprint ~arch ~alloc ~mode rows.(mode))
  in
  let cached = Array.map (Memo.find ~pin:true eval_cache) keys in
  Array.iter
    (function
      | Some _ -> Metrics.incr c_mode_hit
      | None -> Metrics.incr c_mode_miss)
    cached;
  let schedules =
    Mm_obs.Probe.run p_schedule (fun () ->
        Array.init n_modes (fun mode ->
            match cached.(mode) with
            | Some (schedule, _, _) -> schedule
            | None ->
              let mode_rec = Omsm.mode omsm mode in
              List_scheduler.run ~policy:config.scheduler_policy
                (List_scheduler.make_input ~mobility:mobilities.(mode) ~routes
                   ~dispatch ~mode_id:mode ~graph:(Mode.graph mode_rec) ~arch ~tech
                   ~mapping:rows.(mode)
                   ~instances:(fun ~pe ~ty ->
                     max 1 (Core_alloc.instances alloc ~mode ~pe ~ty))
                   ~period:(Mode.period mode_rec) ())))
  in
  let scalings =
    Mm_obs.Probe.run p_dvs (fun () ->
        let workspace = Spec.scaling_workspace ctx in
        Array.init n_modes (fun mode ->
            match cached.(mode) with
            | Some (_, scaling, _) -> scaling
            | None ->
              let graph = Mode.graph (Omsm.mode omsm mode) in
              scaling_of config ~workspace ~dispatch ~graph ~arch ~tech
                ~schedule:schedules.(mode) ()))
  in
  let mode_powers =
    Mm_obs.Probe.run p_power (fun () ->
        Array.init n_modes (fun mode ->
            match cached.(mode) with
            | Some (_, _, power) -> power
            | None ->
              Power.mode_power ~arch ~schedule:schedules.(mode)
                ~dyn_energy:scalings.(mode).Scaling.total_dyn_energy))
  in
  Array.iteri
    (fun mode cached_triple ->
      if cached_triple = None then
        Memo.add ~pin:true eval_cache keys.(mode)
          (schedules.(mode), scalings.(mode), mode_powers.(mode)))
    cached;
  assemble config spec mapping ~alloc ~mobilities ~schedules ~scalings ~mode_powers

(* The seed pipeline, kept as the equivalence oracle for the compiled
   path above: per-edge routing, balanced-tree technology lookups, the
   reference scheduler, no caches.  Same probes, so the bench harness
   can attribute per-phase time to either implementation. *)
let evaluate_mapping_reference config spec mapping =
  Mm_obs.Probe.run p_eval @@ fun () ->
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let n_modes = Omsm.n_modes omsm in
  let mobilities =
    Mm_obs.Probe.run p_mobility (fun () ->
        Array.init n_modes (mode_mobility spec mapping))
  in
  let alloc =
    Mm_obs.Probe.run p_alloc (fun () -> Core_alloc.allocate spec mapping ~mobilities)
  in
  let schedules =
    Mm_obs.Probe.run p_schedule (fun () ->
        Array.init n_modes (fun mode ->
            let mode_rec = Omsm.mode omsm mode in
            List_scheduler.run_reference ~policy:config.scheduler_policy
              (List_scheduler.make_input ~mode_id:mode ~graph:(Mode.graph mode_rec)
                 ~arch ~tech
                 ~mapping:(mapping : Mapping.t :> int array array).(mode)
                 ~instances:(fun ~pe ~ty ->
                   max 1 (Core_alloc.instances alloc ~mode ~pe ~ty))
                 ~period:(Mode.period mode_rec) ())))
  in
  let scalings =
    Mm_obs.Probe.run p_dvs (fun () ->
        Array.init n_modes (fun mode ->
            let graph = Mode.graph (Omsm.mode omsm mode) in
            scaling_of_reference config ~graph ~arch ~tech ~schedule:schedules.(mode)))
  in
  let mode_powers =
    Mm_obs.Probe.run p_power (fun () ->
        Array.init n_modes (fun mode ->
            Power.mode_power ~arch ~schedule:schedules.(mode)
              ~dyn_energy:scalings.(mode).Scaling.total_dyn_energy))
  in
  assemble config spec mapping ~alloc ~mobilities ~schedules ~scalings ~mode_powers

(* --- Delta evaluation (DESIGN.md §13) ------------------------------------- *)

(* [evaluate_mapping_delta config spec parent ~dirty mapping] evaluates
   [mapping] given that it differs from [parent.mapping] exactly at the
   genome positions in [dirty] (ascending).  Bit-identical to
   [evaluate_mapping] by construction: clean modes reuse the parent's
   mobility analysis and (schedule, scaling, power) triple; dirty modes
   run the full compiled per-mode path.  Core allocation is global, so
   it is always recomputed and the reuse of a clean mode's triple is
   additionally guarded by its core-instance signature
   ([Core_alloc.loaded_types], the same dependency [eval_key] encodes):
   when the signature moved, the mode is promoted to dirty.  Falls back
   to [evaluate_mapping] whenever more than half the modes are dirty —
   the per-mode caches make the full path nearly as cheap, and a narrow
   dirty set is where the savings are. *)
let evaluate_mapping_delta config spec parent ~dirty mapping =
  let omsm = Spec.omsm spec in
  let n_modes = Omsm.n_modes omsm in
  let dirty_modes = Array.make n_modes false in
  let n_dirty = ref 0 in
  List.iter
    (fun gene ->
      let mode = (Spec.position spec gene).Spec.mode in
      if not dirty_modes.(mode) then begin
        dirty_modes.(mode) <- true;
        incr n_dirty
      end)
    dirty;
  if !n_dirty = 0 then parent
  else if 2 * !n_dirty > n_modes then begin
    Metrics.incr c_delta_fallbacks;
    evaluate_mapping config spec mapping
  end
  else begin
    Metrics.incr c_delta_evals;
    Mm_obs.Probe.run p_eval @@ fun () ->
    let arch = Spec.arch spec in
    let tech = Spec.tech spec in
    let ctx = Spec.compiled spec in
    let routes = Spec.routes ctx in
    let dispatch = Spec.dispatch ctx in
    let rows = (mapping : Mapping.t :> int array array) in
    let mobility_cache = Spec.mode_mobility_cache ctx in
    let eval_cache = Spec.mode_eval_cache ctx in
    Fun.protect ~finally:(fun () ->
        Memo.unpin_all mobility_cache;
        Memo.unpin_all eval_cache)
    @@ fun () ->
    let mobilities =
      Mm_obs.Probe.run p_mobility (fun () ->
          Array.init n_modes (fun mode ->
              if not dirty_modes.(mode) then parent.mobilities.(mode)
              else
                let key = mobility_key ~mode rows.(mode) in
                match Memo.find ~pin:true mobility_cache key with
                | Some m ->
                  Metrics.incr c_mob_hit;
                  m
                | None ->
                  Metrics.incr c_mob_miss;
                  let m =
                    compiled_mode_mobility spec ~routes ~dispatch rows.(mode) mode
                  in
                  Memo.add ~pin:true mobility_cache key m;
                  m))
    in
    let alloc =
      Mm_obs.Probe.run p_alloc (fun () -> Core_alloc.allocate spec mapping ~mobilities)
    in
    (* Allocation is global: a dirty mode can shift the instances granted
       to a clean one.  Promote clean modes whose signature moved. *)
    for mode = 0 to n_modes - 1 do
      if not dirty_modes.(mode) then begin
        let moved = ref false in
        for pe = 0 to Arch.n_pes arch - 1 do
          if
            Pe.is_hardware (Arch.pe arch pe)
            && Core_alloc.loaded_types alloc ~mode ~pe
               <> Core_alloc.loaded_types parent.alloc ~mode ~pe
          then moved := true
        done;
        if !moved then begin
          dirty_modes.(mode) <- true;
          incr n_dirty
        end
      end
    done;
    if 2 * !n_dirty > n_modes then begin
      (* The nested full evaluation pins under the same caches; its
         [unpin_all] runs first and ours is then a no-op. *)
      Metrics.incr c_delta_fallbacks;
      evaluate_mapping config spec mapping
    end
    else begin
      let fingerprint = config_fingerprint config in
      let keys =
        Array.init n_modes (fun mode ->
            if dirty_modes.(mode) then
              Some (eval_key ~fingerprint ~arch ~alloc ~mode rows.(mode))
            else None)
      in
      let cached =
        Array.map
          (function
            | Some key ->
              let found = Memo.find ~pin:true eval_cache key in
              (match found with
              | Some _ -> Metrics.incr c_mode_hit
              | None -> Metrics.incr c_mode_miss);
              found
            | None ->
              Metrics.incr c_delta_mode_reuse;
              None)
          keys
      in
      let schedules =
        Mm_obs.Probe.run p_schedule (fun () ->
            Array.init n_modes (fun mode ->
                if not dirty_modes.(mode) then parent.schedules.(mode)
                else
                  match cached.(mode) with
                  | Some (schedule, _, _) -> schedule
                  | None ->
                    let mode_rec = Omsm.mode omsm mode in
                    List_scheduler.run ~policy:config.scheduler_policy
                      (List_scheduler.make_input ~mobility:mobilities.(mode) ~routes
                         ~dispatch ~mode_id:mode ~graph:(Mode.graph mode_rec) ~arch
                         ~tech ~mapping:rows.(mode)
                         ~instances:(fun ~pe ~ty ->
                           max 1 (Core_alloc.instances alloc ~mode ~pe ~ty))
                         ~period:(Mode.period mode_rec) ())))
      in
      let scalings =
        Mm_obs.Probe.run p_dvs (fun () ->
            let workspace = Spec.scaling_workspace ctx in
            Array.init n_modes (fun mode ->
                if not dirty_modes.(mode) then parent.scalings.(mode)
                else
                  match cached.(mode) with
                  | Some (_, scaling, _) -> scaling
                  | None ->
                    let graph = Mode.graph (Omsm.mode omsm mode) in
                    scaling_of config ~workspace ~dispatch ~graph ~arch ~tech
                      ~schedule:schedules.(mode) ()))
      in
      let mode_powers =
        Mm_obs.Probe.run p_power (fun () ->
            Array.init n_modes (fun mode ->
                if not dirty_modes.(mode) then parent.mode_powers.(mode)
                else
                  match cached.(mode) with
                  | Some (_, _, power) -> power
                  | None ->
                    Power.mode_power ~arch ~schedule:schedules.(mode)
                      ~dyn_energy:scalings.(mode).Scaling.total_dyn_energy))
      in
      Array.iteri
        (fun mode key ->
          match (key, cached.(mode)) with
          | Some key, None ->
            Memo.add ~pin:true eval_cache key
              (schedules.(mode), scalings.(mode), mode_powers.(mode))
          | _ -> ())
        keys;
      assemble config spec mapping ~alloc ~mobilities ~schedules ~scalings
        ~mode_powers
    end
  end

let evaluate config spec genome =
  evaluate_mapping config spec (Mapping.of_genome spec genome)

let evaluate_reference config spec genome =
  evaluate_mapping_reference config spec (Mapping.of_genome spec genome)

let evaluate_delta config spec ~parent ~dirty genome =
  evaluate_mapping_delta config spec parent ~dirty (Mapping.of_genome spec genome)
