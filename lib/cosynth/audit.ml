module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Graph = Mm_taskgraph.Graph
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Voltage = Mm_arch.Voltage
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Omsm = Mm_omsm.Omsm
module Transition = Mm_omsm.Transition
module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource
module Scaling = Mm_dvs.Scaling
module Hw_transform = Mm_dvs.Hw_transform
module Power = Mm_energy.Power
module Metrics = Mm_obs.Metrics

type kind =
  | Malformed_slot
  | Wrong_duration
  | Resource_overlap
  | Precedence
  | Comm_mismatch
  | Unroutable_claim
  | Deadline_claim
  | Voltage_off_table
  | Extension_time
  | Energy_mismatch
  | Power_mismatch
  | Transition_bound
  | Area_claim
  | Fitness_claim

let kind_to_string = function
  | Malformed_slot -> "malformed-slot"
  | Wrong_duration -> "wrong-duration"
  | Resource_overlap -> "resource-overlap"
  | Precedence -> "precedence"
  | Comm_mismatch -> "comm-mismatch"
  | Unroutable_claim -> "unroutable-claim"
  | Deadline_claim -> "deadline-claim"
  | Voltage_off_table -> "voltage-off-table"
  | Extension_time -> "extension-time"
  | Energy_mismatch -> "energy-mismatch"
  | Power_mismatch -> "power-mismatch"
  | Transition_bound -> "transition-bound"
  | Area_claim -> "area-claim"
  | Fitness_claim -> "fitness-claim"

type violation = { kind : kind; mode : int option; detail : string }

type report = { violations : violation list; modes_checked : int; clean : bool }

exception Audit_violation of report

let pp_violation ppf v =
  match v.mode with
  | Some m -> Format.fprintf ppf "[%s] mode %d: %s" (kind_to_string v.kind) m v.detail
  | None -> Format.fprintf ppf "[%s] %s" (kind_to_string v.kind) v.detail

let pp_report ppf r =
  if r.clean then Format.fprintf ppf "audit clean (%d modes)" r.modes_checked
  else
    Format.fprintf ppf "audit found %d violation(s) over %d modes:@,%a"
      (List.length r.violations) r.modes_checked
      (Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_violation)
      r.violations

let c_runs = Metrics.counter "audit/runs"
let c_modes = Metrics.counter "audit/modes_checked"
let c_violations = Metrics.counter "audit/violations"

(* Absolute + relative float tolerance: the recomputation below follows
   different summation orders than the production kernels, so exact bit
   equality cannot be demanded — but anything past 1e-9 relative is a
   genuine disagreement, not rounding. *)
let close a b = Float.abs (a -. b) <= 1e-9 +. (1e-9 *. Float.max (Float.abs a) (Float.abs b))

let on_table rail v =
  List.exists (fun level -> close level v) (Voltage.levels rail)

let check ~(config : Fitness.config) ~spec (eval : Fitness.eval) : report =
  Metrics.incr c_runs;
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let n_modes = Omsm.n_modes omsm in
  let acc = ref [] in
  let flag ?mode kind fmt =
    Format.kasprintf (fun detail -> acc := { kind; mode; detail } :: !acc) fmt
  in
  let tol = 1e-9 in
  if
    Array.length eval.Fitness.schedules <> n_modes
    || Array.length eval.Fitness.scalings <> n_modes
    || Array.length eval.Fitness.mode_powers <> n_modes
  then
    flag Malformed_slot "per-mode arrays have %d/%d/%d entries for %d modes"
      (Array.length eval.Fitness.schedules)
      (Array.length eval.Fitness.scalings)
      (Array.length eval.Fitness.mode_powers)
      n_modes
  else begin
    (* ---- Per-mode schedule, scaling and power invariants. ---- *)
    for mode = 0 to n_modes - 1 do
      Metrics.incr c_modes;
      let flag kind fmt = flag ~mode kind fmt in
      let mode_rec = Omsm.mode omsm mode in
      let graph = Mode.graph mode_rec in
      let period = Mode.period mode_rec in
      let n_tasks = Graph.n_tasks graph in
      let s = eval.Fitness.schedules.(mode) in
      let scaling = eval.Fitness.scalings.(mode) in
      if s.Schedule.mode_id <> mode then
        flag Malformed_slot "schedule carries mode id %d" s.Schedule.mode_id;
      if not (close s.Schedule.period period) then
        flag Malformed_slot "schedule period %g, mode period %g" s.Schedule.period period;
      if Array.length s.Schedule.task_slots <> n_tasks then
        flag Malformed_slot "%d slots for %d tasks"
          (Array.length s.Schedule.task_slots)
          n_tasks
      else begin
        (* Slots: indexing, mapping consistency, nominal durations. *)
        Array.iteri
          (fun i (slot : Schedule.task_slot) ->
            if slot.Schedule.task <> i then
              flag Malformed_slot "slot %d holds task %d" i slot.Schedule.task;
            if slot.Schedule.start < -.tol then
              flag Malformed_slot "task %d starts at %g" i slot.Schedule.start;
            let claimed_pe = Schedule.pe_of_slot slot in
            let mapped_pe = Mapping.pe_of eval.Fitness.mapping ~mode ~task:i in
            if claimed_pe <> mapped_pe then
              flag Malformed_slot "task %d scheduled on PE %d but mapped to PE %d" i
                claimed_pe mapped_pe;
            if claimed_pe >= 0 && claimed_pe < Arch.n_pes arch then begin
              let pe = Arch.pe arch claimed_pe in
              let task = Graph.task graph i in
              let ty = Task.ty task in
              (match slot.Schedule.resource with
              | Resource.Sw_pe _ ->
                if not (Pe.is_software pe) then
                  flag Malformed_slot "task %d uses a software slot on hardware PE %d" i
                    claimed_pe
              | Resource.Hw_core { ty = core_ty; instance; _ } ->
                if not (Pe.is_hardware pe) then
                  flag Malformed_slot "task %d uses a core slot on software PE %d" i
                    claimed_pe;
                if core_ty <> Task_type.id ty then
                  flag Malformed_slot "task %d (type %d) runs on a type-%d core" i
                    (Task_type.id ty) core_ty;
                let granted =
                  Core_alloc.instances eval.Fitness.alloc ~mode ~pe:claimed_pe
                    ~ty:(Task_type.id ty)
                in
                if instance < 0 || instance >= granted then
                  flag Malformed_slot
                    "task %d uses core instance %d of %d granted on PE %d" i instance
                    granted claimed_pe
              | Resource.Link l ->
                flag Malformed_slot "task %d scheduled on link %d" i l);
              match Tech_lib.find tech ~ty ~pe with
              | None ->
                flag Malformed_slot "task %d mapped to PE %d with no implementation" i
                  claimed_pe
              | Some impl ->
                if not (close slot.Schedule.duration impl.Tech_lib.exec_time) then
                  flag Wrong_duration "task %d: slot duration %g, implementation t_min %g"
                    i slot.Schedule.duration impl.Tech_lib.exec_time
            end
            else flag Malformed_slot "task %d mapped to unknown PE %d" i claimed_pe)
          s.Schedule.task_slots;
        (* Resource exclusivity: no overlap on any sequential resource. *)
        let by_resource =
          Array.fold_left
            (fun m (slot : Schedule.task_slot) ->
              let existing =
                Option.value ~default:[] (Resource.Map.find_opt slot.Schedule.resource m)
              in
              Resource.Map.add slot.Schedule.resource (slot :: existing) m)
            Resource.Map.empty s.Schedule.task_slots
        in
        Resource.Map.iter
          (fun resource slots ->
            let sorted =
              List.sort
                (fun (a : Schedule.task_slot) b -> compare a.Schedule.start b.Schedule.start)
                slots
            in
            ignore
              (List.fold_left
                 (fun prev (slot : Schedule.task_slot) ->
                   (match prev with
                   | Some (p : Schedule.task_slot) ->
                     if Schedule.finish p > slot.Schedule.start +. tol then
                       flag Resource_overlap "tasks %d and %d overlap on %s"
                         p.Schedule.task slot.Schedule.task
                         (Format.asprintf "%a" Resource.pp resource)
                   | None -> ());
                   Some slot)
                 None sorted))
          by_resource;
        let comms_by_cl = Hashtbl.create 8 in
        List.iter
          (fun (c : Schedule.comm_slot) ->
            Hashtbl.replace comms_by_cl c.Schedule.cl
              (c :: Option.value ~default:[] (Hashtbl.find_opt comms_by_cl c.Schedule.cl)))
          s.Schedule.comm_slots;
        Hashtbl.iter
          (fun cl comms ->
            let sorted =
              List.sort
                (fun (a : Schedule.comm_slot) b -> compare a.Schedule.start b.Schedule.start)
                comms
            in
            ignore
              (List.fold_left
                 (fun prev (c : Schedule.comm_slot) ->
                   (match prev with
                   | Some (p : Schedule.comm_slot) ->
                     if Schedule.comm_finish p > c.Schedule.start +. tol then
                       flag Resource_overlap
                         "communications %d->%d and %d->%d overlap on link %d"
                         p.Schedule.edge.Graph.src p.Schedule.edge.Graph.dst
                         c.Schedule.edge.Graph.src c.Schedule.edge.Graph.dst cl
                   | None -> ());
                   Some c)
                 None sorted))
          comms_by_cl;
        (* Precedence and communication consistency, edge by edge. *)
        let unroutable e =
          List.exists
            (fun (u : Graph.edge) -> u.src = e.Graph.src && u.dst = e.Graph.dst)
            s.Schedule.unroutable
        in
        let comm_of e =
          List.find_opt
            (fun (c : Schedule.comm_slot) ->
              c.Schedule.edge.Graph.src = e.Graph.src
              && c.Schedule.edge.Graph.dst = e.Graph.dst)
            s.Schedule.comm_slots
        in
        List.iter
          (fun (e : Graph.edge) ->
            let producer = s.Schedule.task_slots.(e.src) in
            let consumer = s.Schedule.task_slots.(e.dst) in
            let src_pe = Schedule.pe_of_slot producer in
            let dst_pe = Schedule.pe_of_slot consumer in
            if unroutable e then begin
              if src_pe = dst_pe || Arch.links_between arch src_pe dst_pe <> [] then
                flag Unroutable_claim
                  "edge %d->%d claimed unroutable, but PEs %d and %d can communicate"
                  e.src e.dst src_pe dst_pe
            end
            else if src_pe = dst_pe then begin
              if Schedule.finish producer > consumer.Schedule.start +. tol then
                flag Precedence "edge %d->%d: producer ends %g, consumer starts %g" e.src
                  e.dst (Schedule.finish producer) consumer.Schedule.start
            end
            else
              match comm_of e with
              | None ->
                flag Comm_mismatch "inter-PE edge %d->%d has no communication slot" e.src
                  e.dst
              | Some c ->
                if Schedule.finish producer > c.Schedule.start +. tol then
                  flag Precedence "edge %d->%d: producer ends %g, transfer starts %g"
                    e.src e.dst (Schedule.finish producer) c.Schedule.start;
                if Schedule.comm_finish c > consumer.Schedule.start +. tol then
                  flag Precedence "edge %d->%d: transfer ends %g, consumer starts %g"
                    e.src e.dst (Schedule.comm_finish c) consumer.Schedule.start;
                if c.Schedule.cl < 0 || c.Schedule.cl >= Arch.n_cls arch then
                  flag Comm_mismatch "edge %d->%d routed over unknown link %d" e.src e.dst
                    c.Schedule.cl
                else begin
                  let cl = Arch.cl arch c.Schedule.cl in
                  if not (Cl.links_pes cl src_pe dst_pe) then
                    flag Comm_mismatch "edge %d->%d routed over link %d joining neither PE"
                      e.src e.dst c.Schedule.cl;
                  if not (close c.Schedule.duration (Cl.transfer_time cl ~data:e.data))
                  then
                    flag Comm_mismatch "edge %d->%d: transfer time %g, recomputed %g"
                      e.src e.dst c.Schedule.duration
                      (Cl.transfer_time cl ~data:e.data);
                  if not (close c.Schedule.energy (Cl.transfer_energy cl ~data:e.data))
                  then
                    flag Comm_mismatch "edge %d->%d: transfer energy %g, recomputed %g"
                      e.src e.dst c.Schedule.energy
                      (Cl.transfer_energy cl ~data:e.data)
                end)
          (Graph.edges graph);
        (* ---- DVS: voltages on the table, extension time, energy. ---- *)
        if Array.length scaling.Scaling.task_voltages <> n_tasks then
          flag Malformed_slot "%d task voltages for %d tasks"
            (Array.length scaling.Scaling.task_voltages)
            n_tasks
        else begin
          Array.iteri
            (fun i v ->
              let pe = Arch.pe arch (Schedule.pe_of_slot s.Schedule.task_slots.(i)) in
              match Pe.rail pe with
              | None ->
                if not (Float.is_nan v) then
                  flag Voltage_off_table "task %d reports voltage %g on rail-less PE %d" i
                    v (Pe.id pe)
              | Some rail ->
                if Float.is_nan v || not (on_table rail v) then
                  flag Voltage_off_table
                    "task %d runs at %g V, not a level of PE %d's table" i v (Pe.id pe))
            scaling.Scaling.task_voltages;
          List.iter
            (fun (hs : Scaling.hw_segment) ->
              if hs.Scaling.pe < 0 || hs.Scaling.pe >= Arch.n_pes arch then
                flag Voltage_off_table "segment on unknown PE %d" hs.Scaling.pe
              else
                match Pe.rail (Arch.pe arch hs.Scaling.pe) with
                | None ->
                  flag Voltage_off_table "segment scaled on rail-less PE %d" hs.Scaling.pe
                | Some rail ->
                  let seg = hs.Scaling.segment in
                  if not (on_table rail hs.Scaling.voltage) then
                    flag Voltage_off_table
                      "segment %d on PE %d runs at %g V, not a level of the table"
                      seg.Hw_transform.index hs.Scaling.pe hs.Scaling.voltage;
                  let expected_duration =
                    Voltage.scaled_time rail ~tmin:seg.Hw_transform.duration
                      hs.Scaling.voltage
                  in
                  if not (close hs.Scaling.scaled_duration expected_duration) then
                    flag Extension_time
                      "segment %d on PE %d: scaled duration %g, t_min %g x delay factor \
                       gives %g"
                      seg.Hw_transform.index hs.Scaling.pe hs.Scaling.scaled_duration
                      seg.Hw_transform.duration expected_duration;
                  let expected_energy =
                    Voltage.scaled_energy rail ~pmax:seg.Hw_transform.power
                      ~tmin:seg.Hw_transform.duration hs.Scaling.voltage
                  in
                  if not (close hs.Scaling.energy expected_energy) then
                    flag Energy_mismatch "segment %d on PE %d: energy %g, recomputed %g"
                      seg.Hw_transform.index hs.Scaling.pe hs.Scaling.energy
                      expected_energy)
            scaling.Scaling.hw_segments;
          (* Energy accounting: Σ task energies must equal the directly
             recomputed energies of the non-segment tasks plus the full
             segment energies (segments prorate onto their tasks). *)
          let in_segment = Array.make n_tasks false in
          List.iter
            (fun (hs : Scaling.hw_segment) ->
              List.iter
                (fun t -> if t >= 0 && t < n_tasks then in_segment.(t) <- true)
                hs.Scaling.segment.Hw_transform.running)
            scaling.Scaling.hw_segments;
          let direct = ref 0.0 in
          let ok = ref true in
          Array.iteri
            (fun i (slot : Schedule.task_slot) ->
              if not in_segment.(i) then begin
                let pe = Arch.pe arch (Schedule.pe_of_slot slot) in
                match Tech_lib.find tech ~ty:(Task.ty (Graph.task graph i)) ~pe with
                | None -> ok := false
                | Some impl ->
                  let v = scaling.Scaling.task_voltages.(i) in
                  let e =
                    match Pe.rail pe with
                    | Some rail when not (Float.is_nan v) ->
                      Voltage.scaled_energy rail ~pmax:impl.Tech_lib.dyn_power
                        ~tmin:impl.Tech_lib.exec_time v
                    | Some _ | None ->
                      impl.Tech_lib.dyn_power *. impl.Tech_lib.exec_time
                  in
                  direct := !direct +. e
              end)
            s.Schedule.task_slots;
          if !ok then begin
            let segment_energy =
              List.fold_left
                (fun a (hs : Scaling.hw_segment) -> a +. hs.Scaling.energy)
                0.0 scaling.Scaling.hw_segments
            in
            let task_energy_sum =
              Array.fold_left ( +. ) 0.0 scaling.Scaling.task_energy
            in
            if not (close task_energy_sum (!direct +. segment_energy)) then
              flag Energy_mismatch
                "task energies sum to %g, recomputed %g (direct) + %g (segments)"
                task_energy_sum !direct segment_energy
          end;
          let comm_energy =
            List.fold_left
              (fun a (c : Schedule.comm_slot) -> a +. c.Schedule.energy)
              0.0 s.Schedule.comm_slots
          in
          if not (close scaling.Scaling.comm_energy comm_energy) then
            flag Energy_mismatch "communication energy %g, schedule sums to %g"
              scaling.Scaling.comm_energy comm_energy;
          let total =
            Array.fold_left ( +. ) 0.0 scaling.Scaling.task_energy
            +. scaling.Scaling.comm_energy
          in
          if not (close scaling.Scaling.total_dyn_energy total) then
            flag Energy_mismatch "total dynamic energy %g, components sum to %g"
              scaling.Scaling.total_dyn_energy total;
          (* Stretched finishes: under No_dvs nothing may stretch, so the
             claimed finishes must be the schedule's own. *)
          if Array.length scaling.Scaling.stretched_finish <> n_tasks then
            flag Malformed_slot "%d stretched finishes for %d tasks"
              (Array.length scaling.Scaling.stretched_finish)
              n_tasks
          else
            Array.iteri
              (fun i f ->
                let slot = s.Schedule.task_slots.(i) in
                match config.Fitness.dvs with
                | Fitness.No_dvs ->
                  if not (close f (Schedule.finish slot)) then
                    flag Extension_time
                      "task %d: stretched finish %g differs from schedule finish %g \
                       without DVS"
                      i f (Schedule.finish slot)
                | Fitness.Dvs _ ->
                  if f +. tol < slot.Schedule.duration then
                    flag Extension_time
                      "task %d: stretched finish %g below its own duration %g" i f
                      slot.Schedule.duration)
              scaling.Scaling.stretched_finish
        end;
        (* ---- Mode power. ---- *)
        let mp = eval.Fitness.mode_powers.(mode) in
        if mp.Power.mode_id <> mode then
          flag Power_mismatch "mode power carries mode id %d" mp.Power.mode_id;
        if not (close mp.Power.dyn_power (scaling.Scaling.total_dyn_energy /. period))
        then
          flag Power_mismatch "dynamic power %g, energy/period gives %g"
            mp.Power.dyn_power
            (scaling.Scaling.total_dyn_energy /. period);
        let active_pes = Schedule.active_pes s in
        let active_cls = Schedule.active_cls s in
        if mp.Power.active_pes <> active_pes then
          flag Power_mismatch "active PE set disagrees with the schedule";
        if mp.Power.active_cls <> active_cls then
          flag Power_mismatch "active link set disagrees with the schedule";
        let static =
          List.fold_left
            (fun a p -> a +. Pe.static_power (Arch.pe arch p))
            0.0 active_pes
          +. List.fold_left
               (fun a c -> a +. Cl.static_power (Arch.cl arch c))
               0.0 active_cls
        in
        if not (close mp.Power.static_power static) then
          flag Power_mismatch "static power %g, active resources sum to %g"
            mp.Power.static_power static
      end
    done;
    (* ---- Cross-mode claims: timing, transitions, powers, fitness. ---- *)
    let timing_violation = ref 0.0 in
    for mode = 0 to n_modes - 1 do
      let mode_rec = Omsm.mode omsm mode in
      let graph = Mode.graph mode_rec in
      let period = Mode.period mode_rec in
      let finishes = eval.Fitness.scalings.(mode).Scaling.stretched_finish in
      if Array.length finishes = Graph.n_tasks graph then
        Array.iteri
          (fun task finish ->
            let bound =
              match Task.deadline (Graph.task graph task) with
              | None -> period
              | Some d -> Float.min d period
            in
            let excess = finish -. bound in
            if excess > 1e-9 then timing_violation := !timing_violation +. (excess /. period))
          finishes
    done;
    let timing_feasible = !timing_violation <= 1e-12 in
    if timing_feasible <> eval.Fitness.timing_feasible then
      flag Deadline_claim
        "fitness claims timing %s, recomputed violation is %g"
        (if eval.Fitness.timing_feasible then "feasible" else "infeasible")
        !timing_violation;
    let timing_factor =
      1.0 +. (config.Fitness.penalties.Fitness.timing *. !timing_violation)
    in
    if not (close eval.Fitness.timing_factor timing_factor) then
      flag Deadline_claim "timing factor %g, recomputed %g" eval.Fitness.timing_factor
        timing_factor;
    (* Transitions: recomputed reconfiguration times against the OMSM
       edge bounds. *)
    let recomputed = Transition_time.compute spec eval.Fitness.alloc in
    if List.length recomputed <> List.length eval.Fitness.transition_times then
      flag Transition_bound "%d transition entries, specification has %d"
        (List.length eval.Fitness.transition_times)
        (List.length recomputed)
    else
      List.iter2
        (fun (claimed : Transition_time.entry) (fresh : Transition_time.entry) ->
          let src = Transition.src fresh.Transition_time.transition in
          let dst = Transition.dst fresh.Transition_time.transition in
          if
            Transition.src claimed.Transition_time.transition <> src
            || Transition.dst claimed.Transition_time.transition <> dst
          then flag Transition_bound "transition list order disagrees"
          else begin
            if not (close claimed.Transition_time.time fresh.Transition_time.time) then
              flag Transition_bound "transition %d->%d: time %g, recomputed %g" src dst
                claimed.Transition_time.time fresh.Transition_time.time;
            if
              not
                (close claimed.Transition_time.violation fresh.Transition_time.violation)
            then
              flag Transition_bound "transition %d->%d: violation %g, recomputed %g" src
                dst claimed.Transition_time.violation fresh.Transition_time.violation
          end)
        eval.Fitness.transition_times recomputed;
    let transition_feasible = Transition_time.feasible recomputed in
    if transition_feasible <> eval.Fitness.transition_feasible then
      flag Transition_bound "fitness claims transitions %s, recomputation disagrees"
        (if eval.Fitness.transition_feasible then "feasible" else "infeasible");
    let transition_factor =
      1.0
      +. config.Fitness.penalties.Fitness.transition
         *. Transition_time.violation_sum recomputed
    in
    if not (close eval.Fitness.transition_factor transition_factor) then
      flag Transition_bound "transition factor %g, recomputed %g"
        eval.Fitness.transition_factor transition_factor;
    (* Routability. *)
    let unroutable_count =
      Array.fold_left
        (fun a (s : Schedule.t) -> a + List.length s.Schedule.unroutable)
        0 eval.Fitness.schedules
    in
    if eval.Fitness.routable <> (unroutable_count = 0) then
      flag Unroutable_claim "fitness claims %s, schedules leave %d edges unrouted"
        (if eval.Fitness.routable then "routable" else "unroutable")
        unroutable_count;
    let routability_factor =
      1.0 +. (config.Fitness.penalties.Fitness.unroutable *. float_of_int unroutable_count)
    in
    if not (close eval.Fitness.routability_factor routability_factor) then
      flag Unroutable_claim "routability factor %g, recomputed %g"
        eval.Fitness.routability_factor routability_factor;
    (* Area. *)
    let area_feasible = Core_alloc.area_feasible eval.Fitness.alloc in
    if area_feasible <> eval.Fitness.area_feasible then
      flag Area_claim "fitness claims area %s, allocation disagrees"
        (if eval.Fitness.area_feasible then "feasible" else "infeasible");
    let area_factor =
      1.0
      +. config.Fitness.penalties.Fitness.area
         *. Core_alloc.excess_ratio_sum eval.Fitness.alloc
    in
    if not (close eval.Fitness.area_factor area_factor) then
      flag Area_claim "area factor %g, recomputed %g" eval.Fitness.area_factor area_factor;
    (* Average powers under both weightings (Eq. 1). *)
    let true_probabilities =
      Array.init n_modes (fun mode -> Mode.probability (Omsm.mode omsm mode))
    in
    let eval_probabilities =
      match config.Fitness.weighting with
      | Fitness.True_probabilities -> true_probabilities
      | Fitness.Uniform -> Array.make n_modes (1.0 /. float_of_int n_modes)
    in
    let true_power =
      Power.average ~probabilities:true_probabilities eval.Fitness.mode_powers
    in
    if not (close eval.Fitness.true_power true_power) then
      flag Power_mismatch "true power %g, recomputed %g" eval.Fitness.true_power
        true_power;
    let eval_power =
      Power.average ~probabilities:eval_probabilities eval.Fitness.mode_powers
    in
    if not (close eval.Fitness.eval_power eval_power) then
      flag Power_mismatch "eval power %g, recomputed %g" eval.Fitness.eval_power
        eval_power;
    (* The fitness formula itself.  Under a robust objective the power
       term is the Ψ-distribution summary, re-derived through the same
       [Fitness.robust_power] float path the evaluation used. *)
    let objective_power =
      match config.Fitness.robust with
      | None -> eval.Fitness.eval_power
      | Some r -> Fitness.robust_power r eval.Fitness.mode_powers
    in
    let raw =
      objective_power *. eval.Fitness.timing_factor *. eval.Fitness.area_factor
      *. eval.Fitness.transition_factor *. eval.Fitness.routability_factor
    in
    let expected_fitness =
      if
        eval.Fitness.timing_feasible && eval.Fitness.area_feasible
        && eval.Fitness.transition_feasible && eval.Fitness.routable
      then raw
      else raw *. 1e6
    in
    if not (close eval.Fitness.fitness expected_fitness) then
      flag Fitness_claim "fitness %g, power x factors gives %g" eval.Fitness.fitness
        expected_fitness
  end;
  let violations = List.rev !acc in
  Metrics.incr ~by:(List.length violations) c_violations;
  { violations; modes_checked = n_modes; clean = violations = [] }

let check_exn ~config ~spec eval =
  let report = check ~config ~spec eval in
  if not report.clean then raise (Audit_violation report)
