module Prng = Mm_util.Prng
module Engine = Mm_ga.Engine
module Omsm = Mm_omsm.Omsm
module Transition = Mm_omsm.Transition
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe

let mode_positions spec mode =
  let count = Spec.mode_task_count spec mode in
  List.init count (fun task -> Spec.index_of spec ~mode ~task)

let pe_of_gene spec position gene = Pe.id (Spec.candidates spec position).(gene)

(* Re-map the gene to a uniformly chosen candidate satisfying [accept];
   false when no alternative exists. *)
let remap_to rng spec position genome ~accept =
  let cands = Spec.candidates spec position in
  let options = ref [] in
  Array.iteri (fun g pe -> if g <> genome.(position) && accept pe then options := g :: !options) cands;
  match !options with
  | [] -> false
  | options ->
    genome.(position) <- Prng.pick rng options;
    true

let shutdown spec =
  let apply rng ~snapshot:_ ~info:_ genome =
    let omsm = Spec.omsm spec in
    let mode = Prng.int rng (Omsm.n_modes omsm) in
    let positions = mode_positions spec mode in
    (* PEs used by the mode under this genome. *)
    let used =
      List.map (fun i -> pe_of_gene spec i genome.(i)) positions
      |> List.sort_uniq Int.compare
    in
    match used with
    | [] | [ _ ] -> false (* nothing to free: zero or one PE in use *)
    | _ ->
      (* Non-essential: every task of the mode on this PE has an
         alternative implementation elsewhere. *)
      let non_essential pe =
        List.for_all
          (fun i ->
            pe_of_gene spec i genome.(i) <> pe
            || Array.exists (fun cand -> Pe.id cand <> pe) (Spec.candidates spec i))
          positions
      in
      (match List.filter non_essential used with
      | [] -> false
      | candidates ->
        let victim = Prng.pick rng candidates in
        let changed = ref false in
        List.iter
          (fun i ->
            if pe_of_gene spec i genome.(i) = victim then
              if remap_to rng spec i genome ~accept:(fun pe -> Pe.id pe <> victim) then
                changed := true)
          positions;
        !changed)
  in
  { Engine.name = "shutdown-improvement"; rate = 0.02; apply }

(* Positions currently mapped onto PEs selected by [select]. *)
let positions_on spec genome ~select =
  List.filter
    (fun i -> select (Arch.pe (Spec.arch spec) (pe_of_gene spec i genome.(i))))
    (List.init (Spec.n_positions spec) Fun.id)

let remap_some rng spec genome ~from ~to_ =
  match positions_on spec genome ~select:from with
  | [] -> false
  | positions ->
    let k = 1 + Prng.int rng (max 1 (List.length positions / 4)) in
    let chosen = Prng.sample_without_replacement rng k positions in
    List.fold_left
      (fun changed i -> remap_to rng spec i genome ~accept:to_ || changed)
      false chosen

let area spec =
  let apply rng ~snapshot:_ ~info genome =
    if info.Fitness.area_feasible then false
    else remap_some rng spec genome ~from:Pe.is_hardware ~to_:Pe.is_software
  in
  { Engine.name = "area-improvement"; rate = 0.25; apply }

let timing spec =
  let apply rng ~snapshot:_ ~info genome =
    if info.Fitness.timing_feasible then false
    else remap_some rng spec genome ~from:Pe.is_software ~to_:Pe.is_hardware
  in
  { Engine.name = "timing-improvement"; rate = 0.25; apply }

let transition spec =
  let apply rng ~snapshot:_ ~info genome =
    if info.Fitness.transition_feasible then false
    else begin
      (* Modes entered through violating transitions: pull their tasks
         off the FPGAs responsible for the reconfiguration overhead. *)
      let violating_modes =
        List.filter_map
          (fun (e : Transition_time.entry) ->
            if e.violation > 0.0 then Some (Transition.dst e.transition) else None)
          info.Fitness.transition_times
        |> List.sort_uniq Int.compare
      in
      let in_violating_mode i =
        List.mem (Spec.position spec i).Spec.mode violating_modes
      in
      let changed = ref false in
      List.iter
        (fun i ->
          if
            in_violating_mode i
            && Pe.is_reconfigurable (Arch.pe (Spec.arch spec) (pe_of_gene spec i genome.(i)))
            && Prng.chance rng 0.5
          then
            if remap_to rng spec i genome ~accept:(fun pe -> not (Pe.is_reconfigurable pe))
            then changed := true)
        (List.init (Spec.n_positions spec) Fun.id);
      !changed
    end
  in
  { Engine.name = "transition-improvement"; rate = 0.25; apply }

let all spec = [ shutdown spec; area spec; timing spec; transition spec ]
