module Omsm = Mm_omsm.Omsm
module Transition = Mm_omsm.Transition
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe

type entry = {
  transition : Transition.t;
  time : float;
  violation : float;
}

let reconfig_time spec alloc ~src ~dst =
  let arch = Spec.arch spec in
  List.fold_left
    (fun acc pe_rec ->
      if not (Pe.is_reconfigurable pe_rec) then acc
      else
        let pe = Pe.id pe_rec in
        let src_loaded = Core_alloc.loaded_types alloc ~mode:src ~pe in
        let dst_loaded = Core_alloc.loaded_types alloc ~mode:dst ~pe in
        let count_in l ty = Option.value ~default:0 (List.assoc_opt ty l) in
        let area_to_load =
          List.fold_left
            (fun acc (ty, dst_count) ->
              let missing = max 0 (dst_count - count_in src_loaded ty) in
              acc +. (float_of_int missing *. Spec.core_area spec ~pe ~ty_id:ty))
            0.0 dst_loaded
        in
        acc +. (area_to_load *. Pe.reconfig_time_per_area pe_rec))
    0.0 (Arch.pes arch)

let compute spec alloc =
  List.map
    (fun transition ->
      let time =
        reconfig_time spec alloc ~src:(Transition.src transition)
          ~dst:(Transition.dst transition)
      in
      let violation = Float.max 0.0 ((time /. Transition.max_time transition) -. 1.0) in
      { transition; time; violation })
    (Omsm.transitions (Spec.omsm spec))

let violation_sum entries =
  List.fold_left (fun acc e -> acc +. e.violation) 0.0 entries

let feasible entries = List.for_all (fun e -> e.violation <= 0.0) entries
