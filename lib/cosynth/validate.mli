(** Total semantic validation of multi-mode specifications.

    Every well-formedness rule the smart constructors enforce by raising
    — plus the semantic rules none of them can see alone (Eq. 1
    probability mass, OMSM reachability, library coverage) — expressed
    as structured diagnostics with stable [MM0xx] codes.  {!check_raw}
    reports {e all} problems of an unvalidated {!Raw.t} in one pass
    instead of stopping at the first constructor exception, which is
    what makes [Mm_io.Codec.load_spec_result] total. *)

type severity = Error | Warning

type diag = {
  code : string;  (** Stable machine-readable code, e.g. ["MM012"]. *)
  severity : severity;
  path : string;  (** Dotted path into the spec, e.g. ["spec.modes[1].edges[2]"]. *)
  message : string;
  pos : (int * int) option;  (** Source line/column when decoded from text. *)
}

val errors : diag list -> diag list
val warnings : diag list -> diag list
val has_errors : diag list -> bool

val exit_code : diag list -> int
(** 0 clean, 1 warnings only, 2 any error — the [mmsynth check]
    convention. *)

val to_string : diag -> string
val pp : Format.formatter -> diag -> unit
val pp_list : Format.formatter -> diag list -> unit

(** The unvalidated mirror of [Spec.t]: plain records straight out of
    the decoder (or {!of_spec}), each carrying the source position it
    was read from.  Nothing here is checked — that is {!check_raw}'s
    job. *)
module Raw : sig
  type pos = (int * int) option

  type ty = { id : int; name : string; pos : pos }

  type pe = {
    id : int;
    name : string;
    kind : Mm_arch.Pe.kind;
    static_power : float;
    rail : (float * float list) option;  (** threshold, levels. *)
    area : float option;
    reconfig : float option;
    pos : pos;
  }

  type cl = {
    id : int;
    name : string;
    connects : int list;
    time_per_data : float;
    transfer_power : float;
    static_power : float;
    pos : pos;
  }

  type impl = {
    ty : int;
    pe : int;
    time : float;
    power : float;
    area : float;
    pos : pos;
  }

  type task = {
    id : int;
    name : string;
    ty : int;
    deadline : float option;
    pos : pos;
  }

  type edge = { src : int; dst : int; data : float; pos : pos }

  type mode = {
    id : int;
    name : string;
    period : float;
    probability : float;
    tasks : task list;
    edges : edge list;
    pos : pos;
  }

  type transition = { src : int; dst : int; max_time : float; pos : pos }

  type t = {
    name : string;
    arch_name : string;
    types : ty list;
    pes : pe list;
    cls : cl list;
    impls : impl list;
    modes : mode list;
    transitions : transition list;
  }
end

val check_raw : Raw.t -> diag list
(** All semantic diagnostics of the raw spec, in path order.  Never
    raises. *)

val of_spec : Spec.t -> Raw.t
(** Project a constructed spec back onto the raw model (positions all
    [None]) so already-loaded specs can be checked too. *)

val check_spec : Spec.t -> diag list
(** [check_raw (of_spec spec)] — by construction only warnings can
    remain, but the call also cross-checks the constructors themselves. *)

val build : ?force:bool -> Raw.t -> (Spec.t, diag list) result
(** Run {!check_raw}, then construct the [Spec.t] through the smart
    constructors.  [Error] on any error-severity diagnostic (unless
    [force]), or on an unexpected constructor failure ([MM099]).  A
    successful build still reports nothing about warnings — pair with
    {!check_raw} when they should be shown. *)
