module Prng = Mm_util.Prng

type config = {
  initial_temperature : float;
  cooling : float;
  steps : int;
  moves_per_step : int;
}

let default_config =
  { initial_temperature = 0.3; cooling = 0.999; steps = 6000; moves_per_step = 3 }

type result = {
  genome : int array;
  eval : Fitness.eval;
  accepted : int;
  evaluations : int;
  cpu_seconds : float;
}

let propose rng spec ~moves genome =
  let candidate = Array.copy genome in
  let n = Array.length candidate in
  let changes = 1 + Prng.int rng moves in
  for _ = 1 to changes do
    let position = Prng.int rng n in
    let alphabet = Array.length (Spec.candidates spec position) in
    if alphabet > 1 then begin
      (* Draw a different gene value uniformly. *)
      let shifted = 1 + Prng.int rng (alphabet - 1) in
      candidate.(position) <- (candidate.(position) + shifted) mod alphabet
    end
  done;
  candidate

let run ?(config = default_config) ?(fitness = Fitness.default_config) ~spec ~seed () =
  if config.steps <= 0 then invalid_arg "Annealing.run: steps must be positive";
  if not (config.cooling > 0.0 && config.cooling < 1.0) then
    invalid_arg "Annealing.run: cooling must be in (0, 1)";
  let rng = Prng.create ~seed in
  let started = Sys.time () in
  let evaluations = ref 0 in
  let eval genome =
    incr evaluations;
    Fitness.evaluate fitness spec genome
  in
  let start =
    match Synthesis.software_anchors spec with
    | anchor :: _ -> anchor
    | [] -> Mm_ga.Genome.random rng ~counts:(Spec.gene_counts spec)
  in
  let current = ref start in
  let current_eval = ref (eval start) in
  let best = ref start in
  let best_eval = ref !current_eval in
  let temperature = ref (config.initial_temperature *. !current_eval.Fitness.fitness) in
  let accepted = ref 0 in
  for _ = 1 to config.steps do
    let candidate = propose rng spec ~moves:config.moves_per_step !current in
    let candidate_eval = eval candidate in
    let delta = candidate_eval.Fitness.fitness -. !current_eval.Fitness.fitness in
    let accept =
      delta <= 0.0
      || (!temperature > 0.0 && Prng.chance rng (exp (-.delta /. !temperature)))
    in
    if accept then begin
      incr accepted;
      current := candidate;
      current_eval := candidate_eval;
      if candidate_eval.Fitness.fitness < !best_eval.Fitness.fitness then begin
        best := candidate;
        best_eval := candidate_eval
      end
    end;
    temperature := !temperature *. config.cooling
  done;
  {
    genome = !best;
    eval = !best_eval;
    accepted = !accepted;
    evaluations = !evaluations;
    cpu_seconds = Sys.time () -. started;
  }
