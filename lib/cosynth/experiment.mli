(** The paper's experimental protocol: synthesise each benchmark twice —
    once neglecting mode execution probabilities (uniform weighting, the
    baseline of every table) and once with the proposed
    probability-weighted fitness — over several repeated GA runs, and
    report averaged powers, CPU times and the percentage reduction. *)

type arm = {
  power : Mm_util.Stats.summary;  (** True average power over the runs (W). *)
  cpu_seconds : Mm_util.Stats.summary;
  best : Synthesis.result;  (** The run with the lowest true average power. *)
}

type comparison = {
  without_probabilities : arm;  (** Weighting = Uniform. *)
  with_probabilities : arm;  (** Weighting = True_probabilities (proposed). *)
  reduction_percent : float;
      (** 100·(baseline − proposed)/baseline on mean powers; the
          "Reduc. (%)" column. *)
}

val compare :
  ?ga:Mm_ga.Engine.config ->
  ?dvs:Fitness.dvs ->
  ?use_improvements:bool ->
  ?restarts:int ->
  ?jobs:int ->
  ?eval_cache:int ->
  spec:Spec.t ->
  runs:int ->
  seed:int ->
  unit ->
  comparison
(** [runs] repeated synthesis runs per arm (the paper used 40), seeded
    [seed], [seed+1], …; both arms share seeds so the comparison is
    paired.  [jobs] and [eval_cache] are forwarded to
    {!Synthesis.config}; neither changes the synthesised results, only
    how fast they are computed. *)
