(** The paper's experimental protocol: synthesise each benchmark twice —
    once neglecting mode execution probabilities (uniform weighting, the
    baseline of every table) and once with the proposed
    probability-weighted fitness — over several repeated GA runs, and
    report averaged powers, CPU times and the percentage reduction. *)

type arm = {
  power : Mm_util.Stats.summary;  (** True average power over the runs (W). *)
  cpu_seconds : Mm_util.Stats.summary;
  best : Synthesis.result;  (** The run with the lowest true average power. *)
}

type comparison = {
  without_probabilities : arm;  (** Weighting = Uniform. *)
  with_probabilities : arm;  (** Weighting = True_probabilities (proposed). *)
  reduction_percent : float;
      (** 100·(baseline − proposed)/baseline on mean powers; the
          "Reduc. (%)" column. *)
}

type run_summary = {
  genome : int array;
  power : float;  (** True average power of the run's best mapping (W). *)
  cpu_seconds : float;
  generations : int;
  evaluations : int;
  cache_hits : int;
  history : float list;
}
(** One completed synthesis run of an arm, reduced to what resuming the
    comparison needs (the winning evaluation is recomputable from the
    genome because fitness evaluation is pure). *)

type state = {
  seed : int;
  runs : int;  (** Runs per arm the comparison was started with. *)
  baseline_done : run_summary list;  (** Completed Uniform-arm runs, oldest first. *)
  proposed_done : run_summary list;
      (** Completed True_probabilities-arm runs; always empty until the
          baseline arm is complete. *)
}
(** Comparison progress at a completed-run boundary — the checkpoint
    granularity of {!compare}.  Coarser than {!Synthesis.run_state} on
    purpose: a comparison is many short runs, so a killed run loses at
    most one run's work. *)

val compare :
  ?ga:Mm_ga.Engine.config ->
  ?dvs:Fitness.dvs ->
  ?use_improvements:bool ->
  ?restarts:int ->
  ?jobs:int ->
  ?eval_cache:int ->
  ?audit:bool ->
  ?islands:int ->
  ?migration_interval:int ->
  ?migration_count:int ->
  ?robust:Synthesis.robust_usage option ->
  ?checkpoint:(state -> unit) ->
  ?resume:state ->
  spec:Spec.t ->
  runs:int ->
  seed:int ->
  unit ->
  comparison
(** [runs] repeated synthesis runs per arm (the paper used 40), seeded
    [seed], [seed+1], …; both arms share seeds so the comparison is
    paired.  [jobs] and [eval_cache] are forwarded to
    {!Synthesis.config}; neither changes the synthesised results, only
    how fast they are computed.  [islands], [migration_interval] and
    [migration_count] select the island-model GA for every run of both
    arms — unlike [jobs] they {e do} change each run's trajectory (see
    {!Synthesis.config}), but both arms share the topology so the
    comparison stays paired.  [audit] (default [false]) runs
    {!Audit.check} on every synthesis result; a dirty report is logged
    by {!Synthesis.run} but never aborts the comparison.

    [checkpoint] is called with the comparison's {!state} after every
    completed run; [resume] skips the runs a state already holds.  The
    resumed comparison's powers and best mappings are bit-identical to
    the uninterrupted one's; evaluation counts of runs executed after a
    resume can differ because the arm's shared memo cache restarts cold.
    Raises [Invalid_argument] when the state's seed/runs bookkeeping
    does not match this comparison. *)
