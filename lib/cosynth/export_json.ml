module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Schedule = Mm_sched.Schedule
module Scaling = Mm_dvs.Scaling
module Power = Mm_energy.Power
module Json = Mm_obs.Json

(* Tiny writer combinators over Mm_obs.Json's primitives: every value is
   emitted through [Json.number]/[Json.str], which is what makes the
   export → parse → re-emit round trip byte-stable (the test-side
   emitter reuses the same primitives). *)
let obj b fields =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Json.str b k;
      Buffer.add_char b ':';
      v b)
    fields;
  Buffer.add_char b '}'

let arr b items =
  Buffer.add_char b '[';
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char b ',';
      item b)
    items;
  Buffer.add_char b ']'

let num f b = Json.number b f
let str s b = Json.str b s
let int i b = Json.int b i
let bool v b = Json.bool b v
let null b = Buffer.add_string b "null"

let task_ref omsm mode task =
  Printf.sprintf "%s.%s" (Mode.name (Omsm.mode omsm mode)) (Task.name task)

(* Scheduling priority of each task within its mode: rank in start-time
   order (ties broken by task id, matching the scheduler's deterministic
   tie-break), 0 = scheduled first.  External runtimes that replay the
   network with a priority scheduler reproduce the static order. *)
let priorities (schedule : Schedule.t) =
  let n = Array.length schedule.Schedule.task_slots in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let sa = schedule.Schedule.task_slots.(a).Schedule.start in
      let sb = schedule.Schedule.task_slots.(b).Schedule.start in
      if sa <> sb then compare sa sb else compare a b)
    order;
  let rank = Array.make n 0 in
  Array.iteri (fun pos task -> rank.(task) <- pos) order;
  rank

let mode_json omsm (mp : Power.mode_power) mode b =
  let mode_rec = Omsm.mode omsm mode in
  obj b
    [
      ("id", int mode);
      ("name", str (Mode.name mode_rec));
      ("probability", num (Mode.probability mode_rec));
      ("period_s", num (Mode.period mode_rec));
      ( "power_w",
        fun b ->
          obj b
            [
              ("dynamic", num mp.Power.dyn_power);
              ("static", num mp.Power.static_power);
              ("total", num (Power.total mp));
            ] );
      ("active_pes", fun b -> arr b (List.map int mp.Power.active_pes));
      ("active_cls", fun b -> arr b (List.map int mp.Power.active_cls));
      ("shut_down_pes", fun b -> arr b (List.map int mp.Power.shut_down_pes));
      ("shut_down_cls", fun b -> arr b (List.map int mp.Power.shut_down_cls));
    ]

let task_json spec omsm (eval : Fitness.eval) mode rank task b =
  let arch = Spec.arch spec in
  let mode_rec = Omsm.mode omsm mode in
  let tid = Task.id task in
  let slot = eval.Fitness.schedules.(mode).Schedule.task_slots.(tid) in
  let pe_id = Schedule.pe_of_slot slot in
  obj b
    ([
       ("name", str (task_ref omsm mode task));
       ("mode", int mode);
       ("task", int tid);
       ("type", str (Task_type.name (Task.ty task)));
       ("pe", str (Pe.name (Arch.pe arch pe_id)));
       ("pe_id", int pe_id);
       ("period_s", num (Mode.period mode_rec));
       ( "deadline_s",
         match Task.deadline task with Some d -> num d | None -> null );
       ("priority", int rank.(tid));
       ("start_s", num slot.Schedule.start);
       ("duration_s", num slot.Schedule.duration);
       ("finish_s", num (Schedule.finish slot));
     ]
    @
    match eval.Fitness.scalings.(mode).Scaling.stretched_finish with
    | [||] -> []
    | finishes -> [ ("scaled_finish_s", num finishes.(tid)) ])

let connection_json spec omsm (eval : Fitness.eval) mode (edge : Graph.edge) b =
  let arch = Spec.arch spec in
  let graph = Mode.graph (Omsm.mode omsm mode) in
  let schedule = eval.Fitness.schedules.(mode) in
  let slot =
    List.find_opt
      (fun (s : Schedule.comm_slot) ->
        s.Schedule.edge.Graph.src = edge.Graph.src
        && s.Schedule.edge.Graph.dst = edge.Graph.dst)
      schedule.Schedule.comm_slots
  in
  let unroutable =
    List.exists
      (fun (e : Graph.edge) ->
        e.Graph.src = edge.Graph.src && e.Graph.dst = edge.Graph.dst)
      schedule.Schedule.unroutable
  in
  let base =
    [
      ("from", str (task_ref omsm mode (Graph.task graph edge.Graph.src)));
      ("to", str (task_ref omsm mode (Graph.task graph edge.Graph.dst)));
      ("mode", int mode);
      ("data", num edge.Graph.data);
    ]
  in
  match slot with
  | Some s ->
    obj b
      (base
      @ [
          ("kind", str "link");
          ("via", str (Cl.name (Arch.cl arch s.Schedule.cl)));
          ("cl_id", int s.Schedule.cl);
          ("start_s", num s.Schedule.start);
          ("duration_s", num s.Schedule.duration);
          ("energy_j", num s.Schedule.energy);
        ])
  | None ->
    obj b (base @ [ ("kind", str (if unroutable then "unroutable" else "local")) ])

let transition_json (entry : Transition_time.entry) b =
  obj b
    [
      ("src", int (Transition.src entry.Transition_time.transition));
      ("dst", int (Transition.dst entry.Transition_time.transition));
      ("max_time_s", num (Transition.max_time entry.Transition_time.transition));
      ("time_s", num entry.Transition_time.time);
      ("violation", num entry.Transition_time.violation);
    ]

let to_string spec (eval : Fitness.eval) =
  let omsm = Spec.omsm spec in
  let n_modes = Omsm.n_modes omsm in
  if Array.length eval.Fitness.schedules <> n_modes then
    invalid_arg "Export_json.to_string: evaluation does not match the specification";
  let b = Buffer.create 4096 in
  let modes = List.init n_modes (fun m -> m) in
  obj b
    [
      ("format", str "mmsyn-task-network");
      ("version", int 1);
      ("system", str (Omsm.name omsm));
      ("average_power_w", num eval.Fitness.true_power);
      ("fitness", num eval.Fitness.fitness);
      ("feasible", bool (Fitness.feasible eval));
      ( "modes",
        fun b ->
          arr b
            (List.map
               (fun m -> mode_json omsm eval.Fitness.mode_powers.(m) m)
               modes) );
      ( "tasks",
        fun b ->
          arr b
            (List.concat_map
               (fun m ->
                 let graph = Mode.graph (Omsm.mode omsm m) in
                 let rank = priorities eval.Fitness.schedules.(m) in
                 List.init (Graph.n_tasks graph) (fun t ->
                     task_json spec omsm eval m rank (Graph.task graph t)))
               modes) );
      ( "connections",
        fun b ->
          arr b
            (List.concat_map
               (fun m ->
                 let graph = Mode.graph (Omsm.mode omsm m) in
                 List.map
                   (fun edge -> connection_json spec omsm eval m edge)
                   (Graph.edges graph))
               modes) );
      ( "transitions",
        fun b -> arr b (List.map transition_json eval.Fitness.transition_times) );
    ];
  Buffer.contents b
