(** Task-network JSON export of a synthesised implementation.

    Serialises a finished evaluation as a single JSON object in the
    style of ProbTime's network specification — a flat task network with
    periods, priorities and connections, annotated with the per-mode
    power figures — so external runtimes and tooling can consume
    synthesis results without linking against mmsyn.

    Schema (version 1, one object, key order fixed):

    - [format]/[version]/[system]: ["mmsyn-task-network"], [1], the OMSM
      name;
    - [average_power_w], [fitness], [feasible]: headline figures of the
      evaluation;
    - [modes]: id, name, probability, period, dynamic/static/total power
      and the active/shut-down PE and CL id sets per mode;
    - [tasks]: one entry per (mode, task) — globally unique
      ["<mode>.<task>"] name, type, mapped PE, period, optional
      deadline, scheduling [priority] (rank in start-time order within
      the mode, 0 first), and the static-schedule [start_s]/
      [duration_s]/[finish_s] plus [scaled_finish_s] when DVS ran;
    - [connections]: one entry per task-graph edge — source and
      destination task refs, data volume, and [kind]: ["local"] (same
      PE), ["link"] (with CL name/id, transfer window and energy) or
      ["unroutable"];
    - [transitions]: the OMSM transition list with allowed and achieved
      reconfiguration times.

    All numbers go through {!Mm_obs.Json.number}, so equal evaluations
    produce byte-identical exports and export → parse → re-emit is
    stable (the round-trip property in [test_fleet.ml]). *)

val to_string : Spec.t -> Fitness.eval -> string
(** Raises [Invalid_argument] when the evaluation's shape does not match
    the specification (wrong mode count). *)
