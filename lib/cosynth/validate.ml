module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm

type severity = Error | Warning

type diag = {
  code : string;
  severity : severity;
  path : string;
  message : string;
  pos : (int * int) option;
}

let errors diags = List.filter (fun d -> d.severity = Error) diags
let warnings diags = List.filter (fun d -> d.severity = Warning) diags
let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let exit_code diags =
  if has_errors diags then 2 else if diags <> [] then 1 else 0

let to_string d =
  let sev = match d.severity with Error -> "error" | Warning -> "warning" in
  let where = match d.pos with Some (l, c) -> Printf.sprintf "%d:%d: " l c | None -> "" in
  Printf.sprintf "%s%s %s [%s]: %s" where sev d.code d.path d.message

let pp ppf d = Format.pp_print_string ppf (to_string d)

let pp_list ppf diags =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf diags

module Raw = struct
  type pos = (int * int) option

  type ty = { id : int; name : string; pos : pos }

  type pe = {
    id : int;
    name : string;
    kind : Pe.kind;
    static_power : float;
    rail : (float * float list) option;
    area : float option;
    reconfig : float option;
    pos : pos;
  }

  type cl = {
    id : int;
    name : string;
    connects : int list;
    time_per_data : float;
    transfer_power : float;
    static_power : float;
    pos : pos;
  }

  type impl = {
    ty : int;
    pe : int;
    time : float;
    power : float;
    area : float;
    pos : pos;
  }

  type task = {
    id : int;
    name : string;
    ty : int;
    deadline : float option;
    pos : pos;
  }

  type edge = { src : int; dst : int; data : float; pos : pos }

  type mode = {
    id : int;
    name : string;
    period : float;
    probability : float;
    tasks : task list;
    edges : edge list;
    pos : pos;
  }

  type transition = { src : int; dst : int; max_time : float; pos : pos }

  type t = {
    name : string;
    arch_name : string;
    types : ty list;
    pes : pe list;
    cls : cl list;
    impls : impl list;
    modes : mode list;
    transitions : transition list;
  }
end

(* --- The semantic pass --------------------------------------------------- *)

(* One accumulator, one [add] helper; every rule below is a plain fold
   over the raw records, so a broken entity never masks the diagnostics
   of its siblings. *)

let is_software_kind = function Pe.Gpp | Pe.Asip -> true | Pe.Asic | Pe.Fpga -> false

let check_raw (raw : Raw.t) : diag list =
  let acc = ref [] in
  let add ?pos ~code ~severity ~path fmt =
    Format.kasprintf
      (fun message -> acc := { code; severity; path; message; pos } :: !acc)
      fmt
  in
  let err ?pos code path fmt = add ?pos ~code ~severity:Error ~path fmt in
  let warn ?pos code path fmt = add ?pos ~code ~severity:Warning ~path fmt in

  (* Task types. *)
  let type_ids = Hashtbl.create 16 in
  List.iteri
    (fun i (ty : Raw.ty) ->
      let path = Printf.sprintf "spec.types[%d]" i in
      if ty.id < 0 then err ?pos:ty.pos "MM060" path "negative task-type id %d" ty.id;
      if Hashtbl.mem type_ids ty.id then
        err ?pos:ty.pos "MM060" path "duplicate task-type id %d" ty.id
      else Hashtbl.replace type_ids ty.id ty.name)
    raw.types;

  (* Processing elements. *)
  let n_pes = List.length raw.pes in
  if raw.pes = [] then err "MM030" "spec.arch" "architecture has no processing elements";
  List.iteri
    (fun i (pe : Raw.pe) ->
      let path = Printf.sprintf "spec.arch.pes[%d]" i in
      if pe.id <> i then
        err ?pos:pe.pos "MM031" path "PE id %d at position %d (ids must be 0..n-1 in order)"
          pe.id i;
      if pe.static_power < 0.0 then
        err ?pos:pe.pos "MM033" path "negative static power %g" pe.static_power;
      (if is_software_kind pe.kind then begin
         (match pe.area with
         | Some a when a > 0.0 ->
           err ?pos:pe.pos "MM034" path "software PE carries core area %g" a
         | Some _ | None -> ());
         match pe.reconfig with
         | Some r when r > 0.0 ->
           err ?pos:pe.pos "MM034" path "software PE carries reconfiguration cost %g" r
         | Some _ | None -> ()
       end
       else begin
         (match pe.area with
         | Some a ->
           if a <= 0.0 then
             err ?pos:pe.pos "MM035" path "hardware PE area %g must be positive" a
         | None -> err ?pos:pe.pos "MM035" path "hardware PE without a core area");
         match (pe.kind, pe.reconfig) with
         | Pe.Asic, Some r when r > 0.0 ->
           err ?pos:pe.pos "MM039" path "ASIC cores are static (reconfiguration cost %g)" r
         | _, Some r when r < 0.0 ->
           err ?pos:pe.pos "MM039" path "negative reconfiguration cost %g" r
         | _ -> ()
       end);
      match pe.rail with
      | None -> ()
      | Some (threshold, levels) ->
        let rpath = path ^ ".rail" in
        if levels = [] then
          err ?pos:pe.pos "MM036" rpath "DVS-enabled PE with an empty voltage table"
        else begin
          if threshold < 0.0 then
            err ?pos:pe.pos "MM037" rpath "negative threshold voltage %g" threshold;
          List.iter
            (fun v ->
              if v <= threshold then
                err ?pos:pe.pos "MM037" rpath
                  "voltage level %g does not exceed the threshold %g" v threshold)
            levels;
          let sorted_desc =
            let rec ok = function
              | a :: (b :: _ as rest) -> a > b && ok rest
              | [ _ ] | [] -> true
            in
            ok levels
          in
          if not sorted_desc then
            warn ?pos:pe.pos "MM038" rpath
              "voltage table not strictly descending (it will be sorted and deduplicated)"
        end)
    raw.pes;

  (* Communication links. *)
  let linked = Hashtbl.create 16 in
  List.iteri
    (fun i (cl : Raw.cl) ->
      let path = Printf.sprintf "spec.arch.cls[%d]" i in
      if cl.id <> i then
        err ?pos:cl.pos "MM031" path "CL id %d at position %d (ids must be 0..n-1 in order)"
          cl.id i;
      List.iter
        (fun p ->
          if p < 0 || p >= n_pes then
            err ?pos:cl.pos "MM040" path "link attaches unknown PE %d" p
          else Hashtbl.replace linked p ())
        cl.connects;
      let distinct = List.sort_uniq compare cl.connects in
      if List.length distinct < 2 then
        err ?pos:cl.pos "MM041" path "link must attach at least two distinct PEs";
      if List.length distinct <> List.length cl.connects then
        err ?pos:cl.pos "MM041" path "link attaches the same PE twice";
      if cl.time_per_data <= 0.0 then
        err ?pos:cl.pos "MM042" path "non-positive time-per-data %g" cl.time_per_data;
      if cl.transfer_power < 0.0 then
        err ?pos:cl.pos "MM042" path "negative transfer power %g" cl.transfer_power;
      if cl.static_power < 0.0 then
        err ?pos:cl.pos "MM042" path "negative static power %g" cl.static_power)
    raw.cls;
  if n_pes > 1 then
    List.iteri
      (fun i (pe : Raw.pe) ->
        if not (Hashtbl.mem linked i) then
          warn ?pos:pe.pos "MM043"
            (Printf.sprintf "spec.arch.pes[%d]" i)
            "PE %S is attached to no communication link (inter-PE edges will be unroutable)"
            pe.name)
      raw.pes;

  (* Technology library. *)
  let impl_pairs = Hashtbl.create 32 in
  let covered_types = Hashtbl.create 16 in
  List.iteri
    (fun i (impl : Raw.impl) ->
      let path = Printf.sprintf "spec.tech.impls[%d]" i in
      if not (Hashtbl.mem type_ids impl.ty) then
        err ?pos:impl.pos "MM050" path "implementation references unknown task type %d"
          impl.ty;
      if impl.pe < 0 || impl.pe >= n_pes then
        err ?pos:impl.pos "MM051" path "implementation references unknown PE %d" impl.pe
      else begin
        let pe = List.nth raw.pes impl.pe in
        if is_software_kind pe.Raw.kind then begin
          if impl.area > 0.0 then
            err ?pos:impl.pos "MM055" path
              "software implementation carries core area %g" impl.area
        end
        else if impl.area <= 0.0 then
          err ?pos:impl.pos "MM054" path
            "hardware implementation of type %d on PE %d needs a positive core area"
            impl.ty impl.pe;
        Hashtbl.replace covered_types impl.ty ()
      end;
      if impl.time <= 0.0 then
        err ?pos:impl.pos "MM052" path "non-positive execution time %g" impl.time;
      if impl.power < 0.0 then
        err ?pos:impl.pos "MM053" path "negative dynamic power %g" impl.power;
      if impl.area < 0.0 then
        err ?pos:impl.pos "MM053" path "negative core area %g" impl.area;
      if Hashtbl.mem impl_pairs (impl.ty, impl.pe) then
        err ?pos:impl.pos "MM056" path "duplicate implementation for (type %d, PE %d)"
          impl.ty impl.pe
      else Hashtbl.replace impl_pairs (impl.ty, impl.pe) ())
    raw.impls;

  (* Modes, task graphs, Eq. 1. *)
  let n_modes = List.length raw.modes in
  if raw.modes = [] then err "MM010" "spec" "specification has no operational modes";
  let used_types = Hashtbl.create 16 in
  List.iteri
    (fun i (m : Raw.mode) ->
      let path = Printf.sprintf "spec.modes[%d]" i in
      if m.id <> i then
        err ?pos:m.pos "MM011" path "mode id %d at position %d (ids must be 0..n-1 in order)"
          m.id i;
      if m.period <= 0.0 then err ?pos:m.pos "MM014" path "non-positive period %g" m.period;
      if m.probability < 0.0 || m.probability > 1.0 then
        err ?pos:m.pos "MM013" path "execution probability %g outside [0, 1]" m.probability;
      let n_tasks = List.length m.tasks in
      if m.tasks = [] then err ?pos:m.pos "MM020" path "mode has no tasks";
      List.iteri
        (fun j (t : Raw.task) ->
          let tpath = Printf.sprintf "%s.tasks[%d]" path j in
          if t.id <> j then
            err ?pos:t.pos "MM021" tpath
              "task id %d at position %d (ids must be 0..n-1 in order)" t.id j;
          if not (Hashtbl.mem type_ids t.ty) then
            err ?pos:t.pos "MM029" tpath "task references unknown type %d" t.ty
          else if not (Hashtbl.mem used_types t.ty) then Hashtbl.replace used_types t.ty (i, j);
          match t.deadline with
          | Some d when d <= 0.0 -> err ?pos:t.pos "MM027" tpath "non-positive deadline %g" d
          | Some d when m.period > 0.0 && d > m.period ->
            warn ?pos:t.pos "MM028" tpath
              "deadline %g exceeds the period %g (the period is the effective bound)" d
              m.period
          | Some _ | None -> ())
        m.tasks;
      let seen_edges = Hashtbl.create 16 in
      let valid_edges = ref [] in
      List.iteri
        (fun j (e : Raw.edge) ->
          let epath = Printf.sprintf "%s.edges[%d]" path j in
          let endpoint_ok p = p >= 0 && p < n_tasks in
          if not (endpoint_ok e.src && endpoint_ok e.dst) then
            err ?pos:e.pos "MM022" epath "dangling edge %d -> %d (tasks are 0..%d)" e.src
              e.dst (n_tasks - 1)
          else if e.src = e.dst then
            err ?pos:e.pos "MM023" epath "self-loop edge on task %d" e.src
          else begin
            if Hashtbl.mem seen_edges (e.src, e.dst) then
              err ?pos:e.pos "MM024" epath "duplicate edge %d -> %d" e.src e.dst
            else begin
              Hashtbl.replace seen_edges (e.src, e.dst) ();
              valid_edges := (e.src, e.dst) :: !valid_edges
            end
          end;
          if e.data < 0.0 then err ?pos:e.pos "MM025" epath "negative edge data %g" e.data)
        m.edges;
      (* Kahn's algorithm over the well-formed edges: whatever cannot be
         topologically ordered sits on a precedence cycle. *)
      if n_tasks > 0 then begin
        let indegree = Array.make n_tasks 0 in
        let succs = Array.make n_tasks [] in
        List.iter
          (fun (src, dst) ->
            indegree.(dst) <- indegree.(dst) + 1;
            succs.(src) <- dst :: succs.(src))
          !valid_edges;
        let queue = Queue.create () in
        Array.iteri (fun t d -> if d = 0 then Queue.add t queue) indegree;
        let ordered = ref 0 in
        while not (Queue.is_empty queue) do
          let t = Queue.pop queue in
          incr ordered;
          List.iter
            (fun s ->
              indegree.(s) <- indegree.(s) - 1;
              if indegree.(s) = 0 then Queue.add s queue)
            succs.(t)
        done;
        if !ordered < n_tasks then begin
          let cyclic = ref [] in
          Array.iteri (fun t d -> if d > 0 then cyclic := t :: !cyclic) indegree;
          err ?pos:m.pos "MM026" path "precedence cycle through tasks {%s}"
            (String.concat ", " (List.rev_map string_of_int !cyclic |> List.rev))
        end
      end)
    raw.modes;
  if raw.modes <> [] then begin
    let sum = List.fold_left (fun s (m : Raw.mode) -> s +. m.probability) 0.0 raw.modes in
    if Float.abs (sum -. 1.0) > 1e-6 then
      err "MM012" "spec.modes"
        "mode execution probabilities sum to %g, not 1 (Eq. 1: sum over all modes = 1)" sum
  end;

  (* Mode transitions. *)
  let seen_transitions = Hashtbl.create 16 in
  let adjacency = Hashtbl.create 16 in
  List.iteri
    (fun i (tr : Raw.transition) ->
      let path = Printf.sprintf "spec.transitions[%d]" i in
      let endpoint_ok m = m >= 0 && m < n_modes in
      if not (endpoint_ok tr.src && endpoint_ok tr.dst) then
        err ?pos:tr.pos "MM016" path "transition references unknown mode (%d -> %d)" tr.src
          tr.dst
      else if tr.src = tr.dst then
        err ?pos:tr.pos "MM018" path "self transition on mode %d" tr.src
      else begin
        if Hashtbl.mem seen_transitions (tr.src, tr.dst) then
          err ?pos:tr.pos "MM017" path "duplicate transition %d -> %d" tr.src tr.dst
        else Hashtbl.replace seen_transitions (tr.src, tr.dst) ();
        Hashtbl.replace adjacency tr.src
          (tr.dst :: Option.value ~default:[] (Hashtbl.find_opt adjacency tr.src))
      end;
      if tr.max_time <= 0.0 then
        err ?pos:tr.pos "MM019" path "non-positive maximal transition time %g" tr.max_time)
    raw.transitions;
  (* Reachability of every mode from the start mode 0 along directed
     transitions: an unreachable mode never executes, so its probability
     mass (and its whole task graph) is dead weight. *)
  if n_modes > 1 then begin
    let reachable = Array.make n_modes false in
    let queue = Queue.create () in
    reachable.(0) <- true;
    Queue.add 0 queue;
    while not (Queue.is_empty queue) do
      let m = Queue.pop queue in
      List.iter
        (fun d ->
          if d >= 0 && d < n_modes && not reachable.(d) then begin
            reachable.(d) <- true;
            Queue.add d queue
          end)
        (Option.value ~default:[] (Hashtbl.find_opt adjacency m))
    done;
    List.iteri
      (fun i (m : Raw.mode) ->
        if not reachable.(i) then
          warn ?pos:m.pos "MM015"
            (Printf.sprintf "spec.modes[%d]" i)
            "mode %S is unreachable from mode 0 in the OMSM" m.name)
      raw.modes
  end;

  (* Library coverage: every used type needs at least one implementation
     (the rule behind [Spec.Invalid]). *)
  Hashtbl.iter
    (fun ty (mode, task) ->
      if not (Hashtbl.mem covered_types ty) then
        err "MM057"
          (Printf.sprintf "spec.modes[%d].tasks[%d]" mode task)
          "task type %d (%s) has no implementation on any PE"
          ty
          (Option.value ~default:"?" (Hashtbl.find_opt type_ids ty)))
    used_types;

  (* Diagnostics in path order, severity-stable. *)
  List.sort
    (fun a b ->
      match compare a.path b.path with 0 -> compare a.code b.code | c -> c)
    (List.rev !acc)

(* --- Projection of a constructed spec ------------------------------------ *)

let of_spec spec : Raw.t =
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let types =
    Task_type.Set.elements (Omsm.all_task_types omsm)
    |> List.map (fun ty ->
           { Raw.id = Task_type.id ty; name = Task_type.name ty; pos = None })
  in
  let pes =
    List.map
      (fun pe ->
        {
          Raw.id = Pe.id pe;
          name = Pe.name pe;
          kind = Pe.kind pe;
          static_power = Pe.static_power pe;
          rail =
            Option.map
              (fun r -> (r.Voltage.threshold, Voltage.levels r))
              (Pe.rail pe);
          area =
            (if Pe.area_capacity pe > 0.0 then Some (Pe.area_capacity pe) else None);
          reconfig =
            (if Pe.reconfig_time_per_area pe > 0.0 then
               Some (Pe.reconfig_time_per_area pe)
             else None);
          pos = None;
        })
      (Arch.pes arch)
  in
  let cls =
    List.map
      (fun cl ->
        {
          Raw.id = Cl.id cl;
          name = Cl.name cl;
          connects = Cl.connects cl;
          time_per_data = Cl.time_per_data cl;
          transfer_power = Cl.transfer_power cl;
          static_power = Cl.static_power cl;
          pos = None;
        })
      (Arch.cls arch)
  in
  let impls = ref [] in
  Tech_lib.iter
    (fun ~ty_id ~pe_id impl ->
      impls :=
        {
          Raw.ty = ty_id;
          pe = pe_id;
          time = impl.Tech_lib.exec_time;
          power = impl.Tech_lib.dyn_power;
          area = impl.Tech_lib.area;
          pos = None;
        }
        :: !impls)
    tech;
  let modes =
    List.map
      (fun mode ->
        let graph = Mode.graph mode in
        {
          Raw.id = Mode.id mode;
          name = Mode.name mode;
          period = Mode.period mode;
          probability = Mode.probability mode;
          tasks =
            Array.to_list (Graph.tasks graph)
            |> List.map (fun t ->
                   {
                     Raw.id = Task.id t;
                     name = Task.name t;
                     ty = Task_type.id (Task.ty t);
                     deadline = Task.deadline t;
                     pos = None;
                   });
          edges =
            List.map
              (fun (e : Graph.edge) ->
                { Raw.src = e.src; dst = e.dst; data = e.data; pos = None })
              (Graph.edges graph);
          pos = None;
        })
      (Omsm.modes omsm)
  in
  let transitions =
    List.map
      (fun tr ->
        {
          Raw.src = Transition.src tr;
          dst = Transition.dst tr;
          max_time = Transition.max_time tr;
          pos = None;
        })
      (Omsm.transitions omsm)
  in
  {
    Raw.name = Omsm.name omsm;
    arch_name = Arch.name arch;
    types;
    pes;
    cls;
    impls = !impls;
    modes;
    transitions;
  }

let check_spec spec = check_raw (of_spec spec)

(* --- Construction --------------------------------------------------------- *)

let build ?(force = false) (raw : Raw.t) : (Spec.t, diag list) result =
  let diags = check_raw raw in
  if has_errors diags && not force then Error diags
  else
    try
      let types_by_id = Hashtbl.create 16 in
      List.iter
        (fun (ty : Raw.ty) ->
          Hashtbl.replace types_by_id ty.id (Task_type.make ~id:ty.id ~name:ty.name))
        raw.types;
      let find_type ~path id =
        match Hashtbl.find_opt types_by_id id with
        | Some ty -> ty
        | None -> failwith (Printf.sprintf "%s: unknown type %d" path id)
      in
      let pes =
        List.map
          (fun (pe : Raw.pe) ->
            let rail =
              Option.map
                (fun (threshold, levels) -> Voltage.make ~levels ~threshold)
                pe.Raw.rail
            in
            Pe.make ~id:pe.Raw.id ~name:pe.Raw.name ~kind:pe.Raw.kind
              ~static_power:pe.Raw.static_power ?rail ?area_capacity:pe.Raw.area
              ?reconfig_time_per_area:pe.Raw.reconfig ())
          raw.pes
      in
      let cls =
        List.map
          (fun (cl : Raw.cl) ->
            Cl.make ~id:cl.Raw.id ~name:cl.Raw.name ~connects:cl.Raw.connects
              ~time_per_data:cl.Raw.time_per_data
              ~transfer_power:cl.Raw.transfer_power ~static_power:cl.Raw.static_power)
          raw.cls
      in
      let arch = Arch.make ~name:raw.arch_name ~pes ~cls in
      let tech =
        List.fold_left
          (fun tech (impl : Raw.impl) ->
            let area = if impl.Raw.area > 0.0 then Some impl.Raw.area else None in
            Tech_lib.add tech
              ~ty:(find_type ~path:"spec.tech" impl.Raw.ty)
              ~pe:(Arch.pe arch impl.Raw.pe)
              (Tech_lib.impl ~exec_time:impl.Raw.time ~dyn_power:impl.Raw.power ?area ()))
          Tech_lib.empty raw.impls
      in
      let modes =
        List.map
          (fun (m : Raw.mode) ->
            let tasks =
              List.map
                (fun (t : Raw.task) ->
                  Task.make ~id:t.Raw.id ~name:t.Raw.name
                    ~ty:(find_type ~path:"spec.modes" t.Raw.ty)
                    ?deadline:t.Raw.deadline ())
                m.Raw.tasks
              |> Array.of_list
            in
            let edges =
              List.map
                (fun (e : Raw.edge) ->
                  { Graph.src = e.Raw.src; dst = e.Raw.dst; data = e.Raw.data })
                m.Raw.edges
            in
            Mode.make ~id:m.Raw.id ~name:m.Raw.name
              ~graph:(Graph.make ~name:m.Raw.name ~tasks ~edges)
              ~period:m.Raw.period ~probability:m.Raw.probability)
          raw.modes
      in
      let transitions =
        List.map
          (fun (tr : Raw.transition) ->
            Transition.make ~src:tr.Raw.src ~dst:tr.Raw.dst ~max_time:tr.Raw.max_time)
          raw.transitions
      in
      let omsm = Omsm.make ~name:raw.name ~modes ~transitions in
      Ok (Spec.make ~omsm ~arch ~tech)
    with
    | Failure message
    | Invalid_argument message
    | Graph.Invalid message
    | Arch.Invalid message
    | Omsm.Invalid message
    | Spec.Invalid message ->
      Error
        (diags
        @ [
            {
              code = "MM099";
              severity = Error;
              path = "spec";
              message = "construction failed: " ^ message;
              pos = None;
            };
          ])
