module Prng = Mm_util.Prng
module Engine = Mm_ga.Engine
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Log = Mm_obs.Log

(* Coarse spans: one per synthesis run, one per GA restart inside it. *)
let p_run = Mm_obs.Probe.create "synthesis/run"
let p_restart = Mm_obs.Probe.create "synthesis/restart"

type config = {
  fitness : Fitness.config;
  ga : Engine.config;
  use_improvements : bool;
  restarts : int;
  jobs : int;
  eval_cache : int;
}

let default_eval_cache = 8192

let default_config =
  {
    fitness = Fitness.default_config;
    ga = Engine.default_config;
    use_improvements = true;
    restarts = 2;
    jobs = 1;
    eval_cache = default_eval_cache;
  }

type cache = (float * Fitness.eval) Memo.t

type result = {
  genome : int array;
  eval : Fitness.eval;
  generations : int;
  evaluations : int;
  cache_hits : int;
  cpu_seconds : float;
  history : float list;
}

(* Known-good anchors injected into the initial population: all-software
   mappings use no core area and no reconfiguration, so whenever the
   specification admits a software-only schedule the GA's best-ever
   individual is feasible from generation zero and the search can only
   improve on it. *)
let software_anchors spec =
  let arch = Spec.arch spec in
  let sw_ids = List.map Mm_arch.Pe.id (Mm_arch.Architecture.software_pes arch) in
  match sw_ids with
  | [] -> []
  | first :: _ ->
    let genome_with assign =
      Array.init (Spec.n_positions spec) (fun i ->
          match Spec.candidate_index spec i ~pe_id:(assign i) with
          | Some gene -> gene
          | None -> 0)
    in
    let serial = genome_with (fun _ -> first) in
    let round_robin = genome_with (fun i -> List.nth sw_ids (i mod List.length sw_ids)) in
    if serial = round_robin then [ serial ] else [ serial; round_robin ]

let greedy_timing_anchor spec =
  match software_anchors spec with
  | [] -> None
  | base :: _ ->
    let genome = Array.copy base in
    let arch = Spec.arch spec in
    let tech = Spec.tech spec in
    let omsm = Spec.omsm spec in
    let repair_config = { Fitness.default_config with Fitness.dvs = Fitness.No_dvs } in
    let exec_time_on position pe_id =
      let task = Spec.task_at spec position in
      match
        Mm_arch.Tech_lib.find tech
          ~ty:(Mm_taskgraph.Task.ty task)
          ~pe:(Mm_arch.Architecture.pe arch pe_id)
      with
      | Some impl -> impl.Mm_arch.Tech_lib.exec_time
      | None -> infinity
    in
    (* Gene value of the fastest hardware candidate at a position. *)
    let fastest_hw position =
      let cands = Spec.candidates spec position in
      let best = ref None in
      Array.iteri
        (fun gene pe ->
          if Mm_arch.Pe.is_hardware pe then
            let time = exec_time_on position (Mm_arch.Pe.id pe) in
            match !best with
            | Some (_, t) when t <= time -> ()
            | Some _ | None -> best := Some (gene, time))
        cands;
      Option.map fst !best
    in
    let late_modes eval =
      List.filteri
        (fun mode _ ->
          let mode_rec = Mm_omsm.Omsm.mode omsm mode in
          let graph = Mm_omsm.Mode.graph mode_rec in
          let period = Mm_omsm.Mode.period mode_rec in
          Array.exists
            (fun (finish, task) ->
              let bound =
                match Mm_taskgraph.Task.deadline (Mm_taskgraph.Graph.task graph task) with
                | None -> period
                | Some d -> Float.min d period
              in
              finish > bound +. 1e-9)
            (Array.mapi
               (fun task finish -> (finish, task))
               eval.Fitness.scalings.(mode).Mm_dvs.Scaling.stretched_finish))
        (List.init (Mm_omsm.Omsm.n_modes omsm) Fun.id)
    in
    let rec repair budget =
      if budget > 0 then begin
        let eval = Fitness.evaluate repair_config spec genome in
        if not eval.Fitness.timing_feasible then begin
          let late = late_modes eval in
          (* The longest-running software task of a late mode that has a
             hardware alternative removes the most load per move. *)
          let best = ref None in
          for position = 0 to Spec.n_positions spec - 1 do
            let { Spec.mode; _ } = Spec.position spec position in
            if List.mem mode late then begin
              let current_pe = (Spec.candidates spec position).(genome.(position)) in
              if Mm_arch.Pe.is_software current_pe then
                match fastest_hw position with
                | None -> ()
                | Some gene ->
                  let load = exec_time_on position (Mm_arch.Pe.id current_pe) in
                  (match !best with
                  | Some (_, _, heaviest) when heaviest >= load -> ()
                  | Some _ | None -> best := Some (position, gene, load))
            end
          done;
          match !best with
          | None -> () (* nothing left to move *)
          | Some (position, gene, _) ->
            genome.(position) <- gene;
            repair (budget - 1)
        end
      end
    in
    repair 64;
    Some genome

let anchors spec =
  let base = software_anchors spec in
  let all = match greedy_timing_anchor spec with Some g -> base @ [ g ] | None -> base in
  List.sort_uniq compare all

let run ?(config = default_config) ?cache ~spec ~seed () =
  Mm_obs.Probe.run ~args:(fun () -> [ ("seed", string_of_int seed) ]) p_run
  @@ fun () ->
  let rng = Prng.create ~seed in
  let problem =
    {
      Engine.gene_counts = Spec.gene_counts spec;
      evaluate =
        (fun genome ->
          let eval = Fitness.evaluate config.fitness spec genome in
          (eval.Fitness.fitness, eval));
      (* The fitness pipeline is a pure function of the genome, which is
         what licenses pooling and caching at all. *)
      pure = true;
      improvements = (if config.use_improvements then Improvement.all spec else []);
      initial = anchors spec;
    }
  in
  (* One pool and one cache for the whole run: restarts re-inject the
     anchor genomes and re-converge over similar populations, so sharing
     the cache across them is where many of the hits come from. *)
  let pool = if config.jobs > 1 then Some (Pool.create ~domains:config.jobs ()) else None in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool) @@ fun () ->
  let cache =
    (* An externally supplied cache (shared across runs by the experiment
       harness) wins over the per-run one; caching is exact, so sharing
       changes evaluation counts but never a synthesised result. *)
    match cache with
    | Some _ -> cache
    | None ->
      if config.eval_cache > 0 then Some (Memo.create ~capacity:config.eval_cache)
      else None
  in
  let strategy =
    match (pool, cache) with
    | None, None -> Engine.Serial
    | Some p, None -> Engine.Pooled p
    | None, Some c -> Engine.Cached c
    | Some p, Some c -> Engine.Cached_pooled (p, c)
  in
  let restarts = max 1 config.restarts in
  let started = Sys.time () in
  let runs =
    List.init restarts (fun restart ->
        Mm_obs.Probe.run
          ~args:(fun () -> [ ("restart", string_of_int restart) ])
          p_restart
          (fun () ->
            let result =
              Engine.run ~config:config.ga ~strategy ~rng:(Prng.split rng) problem
            in
            Log.debug (fun () ->
                Printf.sprintf "seed %d restart %d/%d: fitness %.6g in %d generations"
                  seed (restart + 1) restarts result.Engine.best_fitness
                  result.Engine.generations);
            result))
  in
  let cpu_seconds = Sys.time () -. started in
  let best =
    match runs with
    | [] -> assert false (* restarts >= 1 *)
    | first :: rest ->
      List.fold_left
        (fun acc r -> if r.Engine.best_fitness < acc.Engine.best_fitness then r else acc)
        first rest
  in
  Log.info (fun () ->
      Printf.sprintf
        "synthesis seed %d: power %.6g W, fitness %.6g, %d evaluations, %.2fs CPU" seed
        best.Engine.best_info.Fitness.true_power best.Engine.best_fitness
        (List.fold_left (fun acc r -> acc + r.Engine.evaluations) 0 runs)
        cpu_seconds);
  {
    genome = best.Engine.best_genome;
    eval = best.Engine.best_info;
    generations = List.fold_left (fun acc r -> acc + r.Engine.generations) 0 runs;
    evaluations = List.fold_left (fun acc r -> acc + r.Engine.evaluations) 0 runs;
    cache_hits = List.fold_left (fun acc r -> acc + r.Engine.cache_hits) 0 runs;
    cpu_seconds;
    history = best.Engine.history;
  }

let average_power result = result.eval.Fitness.true_power
