module Prng = Mm_util.Prng
module Engine = Mm_ga.Engine
module Islands = Mm_ga.Islands
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Log = Mm_obs.Log

(* Coarse spans: one per synthesis run, one per GA restart inside it,
   one per checkpoint handed to a sink. *)
let p_run = Mm_obs.Probe.create "synthesis/run"
let p_restart = Mm_obs.Probe.create "synthesis/restart"
let p_checkpoint = Mm_obs.Probe.create "synthesis/checkpoint"

type robust_usage = {
  model : Mm_energy.Fleet_sim.usage_model;
  samples : int;
  objective : Fitness.robust_objective;
  battery : Mm_energy.Battery.t;
}

type config = {
  fitness : Fitness.config;
  ga : Engine.config;
  use_improvements : bool;
  restarts : int;
  jobs : int;
  eval_cache : int;
  delta : bool;
  audit : bool;
  islands : int;
  migration_interval : int;
  migration_count : int;
  robust : robust_usage option;
}

let default_eval_cache = 8192

let default_config =
  {
    fitness = Fitness.default_config;
    ga = Engine.default_config;
    use_improvements = true;
    restarts = 2;
    jobs = 1;
    eval_cache = default_eval_cache;
    delta = true;
    audit = false;
    islands = 1;
    migration_interval = Islands.default_topology.Islands.migration_interval;
    migration_count = Islands.default_topology.Islands.migration_count;
    robust = None;
  }

(* A robust request with the point model samples the published Ψ
   verbatim — structurally the seed objective — so it is bypassed
   entirely: no Ψ sampling, no fingerprint suffix, bit-identical
   trajectories (held by the equivalence test in test_ga.ml). *)
let robust_active config =
  match config.robust with
  | Some r -> not (Mm_energy.Fleet_sim.is_point r.model)
  | None -> false

(* Child-stream index the robust Ψ samples are drawn from.  Any fixed
   non-zero index works (stream 0 is the outer generator itself); what
   matters is that it never changes, because resumed runs re-derive the
   samples from (seed, index) alone. *)
let robust_psi_stream = 7919

(* Materialise the Ψ samples a robust run evaluates against.  Deriving a
   child stream never advances the outer generator, and the samples are
   a pure function of (seed, model): resumed runs and replayed-run
   recomputes (Experiment) re-derive them exactly rather than carrying
   them in snapshots. *)
let effective_fitness_config config ~spec ~seed =
  if not (robust_active config) then config.fitness
  else
    match config.robust with
    | None -> assert false
    | Some r ->
      let omsm = Spec.omsm spec in
      let n_modes = Mm_omsm.Omsm.n_modes omsm in
      Mm_energy.Fleet_sim.validate_model ~n_modes r.model;
      if r.samples <= 0 then
        invalid_arg "Synthesis.run: robust sample count must be positive";
      let base =
        Array.init n_modes (fun i ->
            Mm_omsm.Mode.probability (Mm_omsm.Omsm.mode omsm i))
      in
      let psi_rng = Prng.stream (Prng.create ~seed) robust_psi_stream in
      let psis =
        Array.init r.samples (fun _ ->
            Mm_energy.Fleet_sim.sample_psi r.model ~base psi_rng)
      in
      {
        config.fitness with
        Fitness.robust =
          Some { Fitness.psis; battery = r.battery; objective = r.objective };
      }

type cache = (float * Fitness.eval) Memo.t

type restart_summary = {
  r_genome : int array;
  r_fitness : float;
  r_generations : int;
  r_evaluations : int;
  r_cache_hits : int;
  r_history : float list;
}

(* In-flight engine state inside a restart: a plain single-population
   engine checkpoint, or the per-island archipelago of the island
   model.  Which variant a snapshot carries is pinned by the config
   fingerprint ([islands=...] is part of it whenever islands > 1), so a
   resume can never feed one shape into the other silently. *)
type engine_state =
  | Single of Engine.checkpoint
  | Sharded of Islands.checkpoint

type run_state = {
  seed : int;
  fingerprint : string;
  next_restart : int;
  completed : restart_summary list;
  outer_rng : int64;
  engine : engine_state option;
}

type checkpoint_sink = { every : int; save : run_state -> unit }

type progress = {
  p_restart : int;
  p_generation : int;
  p_best_fitness : float;
  p_evaluations : int;
  p_cache_hits : int;
}

(* Everything that can change the synthesis trajectory for a given seed
   goes into the fingerprint; [jobs], [eval_cache] and [delta] are
   deliberately absent because the evaluation strategy never perturbs
   the result (see the determinism note in the module doc).  Floats are printed in hex so
   the fingerprint compares them bit-for-bit. *)
let config_fingerprint config =
  let weighting =
    match config.fitness.Fitness.weighting with
    | Fitness.True_probabilities -> "p"
    | Fitness.Uniform -> "u"
  in
  let dvs =
    match config.fitness.Fitness.dvs with
    | Fitness.No_dvs -> "none"
    | Fitness.Dvs sc ->
      Printf.sprintf "%b/%b/%s" sc.Mm_dvs.Scaling.scale_software
        sc.Mm_dvs.Scaling.scale_hardware
        (match sc.Mm_dvs.Scaling.strategy with
        | Mm_dvs.Scaling.Greedy_gradient -> "gradient"
        | Mm_dvs.Scaling.Even_slack -> "even")
  in
  let policy =
    match config.fitness.Fitness.scheduler_policy with
    | Mm_sched.List_scheduler.Mobility_first -> "mobility"
    | Mm_sched.List_scheduler.Critical_path_first -> "critical-path"
    | Mm_sched.List_scheduler.Topological -> "topological"
  in
  let p = config.fitness.Fitness.penalties in
  let ga = config.ga in
  Printf.sprintf
    "w=%s dvs=%s sched=%s pen=%h:%h:%h:%h ga=%d:%d:%h:%h:%d:%d:%d:%h:%h \
     improve=%b restarts=%d"
    weighting dvs policy p.Fitness.timing p.Fitness.area p.Fitness.transition
    p.Fitness.unroutable ga.Engine.population_size ga.Engine.tournament_size
    ga.Engine.crossover_rate ga.Engine.mutation_rate ga.Engine.elite_count
    ga.Engine.max_generations ga.Engine.stagnation_limit
    ga.Engine.diversity_threshold ga.Engine.selection_pressure
    config.use_improvements (max 1 config.restarts)
  ^
  (* Appended only when the island model is active, so every fingerprint
     ever written by an islands=1 run — including pre-island snapshots —
     stays valid verbatim. *)
  (if config.islands > 1 then
     Printf.sprintf " islands=%d:%d:%d" config.islands
       (max 1 config.migration_interval)
       (max 0 config.migration_count)
   else "")
  ^
  (* Same appended-only-when-active rule for the robust objective: the
     point model is a bypass, and every pre-robust fingerprint stays
     valid verbatim. *)
  (if robust_active config then
     match config.robust with
     | Some r ->
       let b = r.battery in
       Printf.sprintf " robust=%s:%d:%s:%h:%h:%h:%h"
         (Mm_energy.Fleet_sim.model_fingerprint r.model)
         (max 1 r.samples)
         (match r.objective with
         | Fitness.Expected_lifetime -> "mean"
         | Fitness.Percentile q -> Printf.sprintf "p%h" q)
         b.Mm_energy.Battery.capacity_ah b.Mm_energy.Battery.voltage
         b.Mm_energy.Battery.peukert b.Mm_energy.Battery.rated_hours
     | None -> assert false
   else "")

type result = {
  genome : int array;
  eval : Fitness.eval;
  generations : int;
  evaluations : int;
  cache_hits : int;
  cpu_seconds : float;
  history : float list;
  audit : Audit.report option;
}

(* Known-good anchors injected into the initial population: all-software
   mappings use no core area and no reconfiguration, so whenever the
   specification admits a software-only schedule the GA's best-ever
   individual is feasible from generation zero and the search can only
   improve on it. *)
let software_anchors spec =
  let arch = Spec.arch spec in
  let sw_ids = List.map Mm_arch.Pe.id (Mm_arch.Architecture.software_pes arch) in
  match sw_ids with
  | [] -> []
  | first :: _ ->
    let genome_with assign =
      Array.init (Spec.n_positions spec) (fun i ->
          match Spec.candidate_index spec i ~pe_id:(assign i) with
          | Some gene -> gene
          | None -> 0)
    in
    let serial = genome_with (fun _ -> first) in
    let round_robin = genome_with (fun i -> List.nth sw_ids (i mod List.length sw_ids)) in
    if serial = round_robin then [ serial ] else [ serial; round_robin ]

let greedy_timing_anchor spec =
  match software_anchors spec with
  | [] -> None
  | base :: _ ->
    let genome = Array.copy base in
    let arch = Spec.arch spec in
    let tech = Spec.tech spec in
    let omsm = Spec.omsm spec in
    let repair_config = { Fitness.default_config with Fitness.dvs = Fitness.No_dvs } in
    let exec_time_on position pe_id =
      let task = Spec.task_at spec position in
      match
        Mm_arch.Tech_lib.find tech
          ~ty:(Mm_taskgraph.Task.ty task)
          ~pe:(Mm_arch.Architecture.pe arch pe_id)
      with
      | Some impl -> impl.Mm_arch.Tech_lib.exec_time
      | None -> infinity
    in
    (* Gene value of the fastest hardware candidate at a position. *)
    let fastest_hw position =
      let cands = Spec.candidates spec position in
      let best = ref None in
      Array.iteri
        (fun gene pe ->
          if Mm_arch.Pe.is_hardware pe then
            let time = exec_time_on position (Mm_arch.Pe.id pe) in
            match !best with
            | Some (_, t) when t <= time -> ()
            | Some _ | None -> best := Some (gene, time))
        cands;
      Option.map fst !best
    in
    let late_modes eval =
      List.filteri
        (fun mode _ ->
          let mode_rec = Mm_omsm.Omsm.mode omsm mode in
          let graph = Mm_omsm.Mode.graph mode_rec in
          let period = Mm_omsm.Mode.period mode_rec in
          Array.exists
            (fun (finish, task) ->
              let bound =
                match Mm_taskgraph.Task.deadline (Mm_taskgraph.Graph.task graph task) with
                | None -> period
                | Some d -> Float.min d period
              in
              finish > bound +. 1e-9)
            (Array.mapi
               (fun task finish -> (finish, task))
               eval.Fitness.scalings.(mode).Mm_dvs.Scaling.stretched_finish))
        (List.init (Mm_omsm.Omsm.n_modes omsm) Fun.id)
    in
    let rec repair budget =
      if budget > 0 then begin
        let eval = Fitness.evaluate repair_config spec genome in
        if not eval.Fitness.timing_feasible then begin
          let late = late_modes eval in
          (* The longest-running software task of a late mode that has a
             hardware alternative removes the most load per move. *)
          let best = ref None in
          for position = 0 to Spec.n_positions spec - 1 do
            let { Spec.mode; _ } = Spec.position spec position in
            if List.mem mode late then begin
              let current_pe = (Spec.candidates spec position).(genome.(position)) in
              if Mm_arch.Pe.is_software current_pe then
                match fastest_hw position with
                | None -> ()
                | Some gene ->
                  let load = exec_time_on position (Mm_arch.Pe.id current_pe) in
                  (match !best with
                  | Some (_, _, heaviest) when heaviest >= load -> ()
                  | Some _ | None -> best := Some (position, gene, load))
            end
          done;
          match !best with
          | None -> () (* nothing left to move *)
          | Some (position, gene, _) ->
            genome.(position) <- gene;
            repair (budget - 1)
        end
      end
    in
    repair 64;
    Some genome

let anchors spec =
  let base = software_anchors spec in
  let all = match greedy_timing_anchor spec with Some g -> base @ [ g ] | None -> base in
  List.sort_uniq compare all

let run ?(config = default_config) ?cache ?checkpoint ?resume ?yield ?pool
    ~spec ~seed () =
  Mm_obs.Probe.run ~args:(fun () -> [ ("seed", string_of_int seed) ]) p_run
  @@ fun () ->
  let fingerprint = config_fingerprint config in
  let restarts = max 1 config.restarts in
  (match resume with
  | None -> ()
  | Some state ->
    (* A snapshot only replays faithfully against the run that produced
       it: same seed, same trajectory-relevant configuration, and a
       restart index that the run can actually reach. *)
    if state.seed <> seed then
      invalid_arg
        (Printf.sprintf "Synthesis.run: snapshot was taken with seed %d, not %d"
           state.seed seed);
    if not (String.equal state.fingerprint fingerprint) then
      invalid_arg "Synthesis.run: snapshot configuration does not match this run";
    if
      state.next_restart > restarts
      || (state.next_restart = restarts && Option.is_some state.engine)
    then invalid_arg "Synthesis.run: snapshot restart index out of range";
    if List.length state.completed <> state.next_restart then
      invalid_arg "Synthesis.run: snapshot restart summaries are inconsistent");
  let rng =
    match resume with
    | None -> Prng.create ~seed
    | Some state -> Prng.of_state state.outer_rng
  in
  let fitness_config = effective_fitness_config config ~spec ~seed in
  let problem =
    {
      Engine.gene_counts = Spec.gene_counts spec;
      evaluate =
        (fun genome ->
          let eval = Fitness.evaluate fitness_config spec genome in
          (eval.Fitness.fitness, eval));
      (* The fitness pipeline is a pure function of the genome, which is
         what licenses pooling and caching at all. *)
      pure = true;
      improvements = (if config.use_improvements then Improvement.all spec else []);
      initial = anchors spec;
    }
  in
  (* One pool and one cache for the whole run: restarts re-inject the
     anchor genomes and re-converge over similar populations, so sharing
     the cache across them is where many of the hits come from.  An
     externally supplied pool (the daemon shares one across all jobs) is
     used as-is and never shut down here — its owner may be multiplexing
     other runs over it. *)
  let owned_pool =
    match pool with
    | Some _ -> None
    | None ->
      if config.jobs > 1 then Some (Pool.create ~domains:config.jobs ())
      else None
  in
  let pool = match pool with Some _ -> pool | None -> owned_pool in
  Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown owned_pool)
  @@ fun () ->
  let use_islands = config.islands > 1 in
  (* Force the compiled spec context on the owner domain before any
     work fans out: [Spec.compiled] memoises through an atomic CAS, so
     racing first evaluations across K domains would each compile the
     whole context and discard K-1 copies.  Warmed here, every domain
     shares the one read-only context. *)
  if pool <> None || use_islands then ignore (Spec.compiled spec);
  let cache =
    (* An externally supplied cache (shared across runs by the experiment
       harness) wins over the per-run one; caching is exact, so sharing
       changes evaluation counts but never a synthesised result.  The
       island model ignores both: islands evaluate on worker domains,
       where a shared cache would be a data race, so each island gets a
       private adaptive cache from [Islands.run] instead. *)
    match cache with
    | Some _ -> if use_islands then None else cache
    | None ->
      if config.eval_cache > 0 && not use_islands then
        Some (Memo.adaptive ~capacity:config.eval_cache)
      else None
  in
  let strategy =
    match (pool, cache) with
    | None, None -> Engine.Serial
    | Some p, None -> Engine.Pooled p
    | None, Some c -> Engine.Cached c
    | Some p, Some c -> Engine.Cached_pooled (p, c)
  in
  (* Delta evaluation is exact (Fitness.evaluate_delta is bit-identical
     to Fitness.evaluate), so like [jobs] and [eval_cache] it changes
     wall time only, never the trajectory. *)
  let delta =
    if config.delta then
      Some
        (fun ~parent ~dirty genome ->
          let eval =
            Fitness.evaluate_delta fitness_config spec ~parent ~dirty genome
          in
          (eval.Fitness.fitness, eval))
    else None
  in
  let started = Sys.time () in
  let save_state sink state =
    Mm_obs.Probe.run
      ~args:(fun () ->
        [
          ("restart", string_of_int state.next_restart);
          ( "generation",
            match state.engine with
            | Some (Single ck) -> string_of_int ck.Engine.generation
            | Some (Sharded ck) ->
              string_of_int
                (Array.fold_left
                   (fun acc (m : Engine.checkpoint) -> max acc m.Engine.generation)
                   0 ck.Islands.members)
            | None -> "-" );
        ])
      p_checkpoint
      (fun () -> sink.save state)
  in
  let summarize (r : _ Engine.result) =
    {
      r_genome = Array.copy r.Engine.best_genome;
      r_fitness = r.Engine.best_fitness;
      r_generations = r.Engine.generations;
      r_evaluations = r.Engine.evaluations;
      r_cache_hits = r.Engine.cache_hits;
      r_history = r.Engine.history;
    }
  in
  (* Summaries stay oldest-first so the best-candidate fold below sees
     restarts in their original order (first strict improvement wins
     ties, exactly as in an uninterrupted run).  Replayed summaries carry
     no [Fitness.eval]; if one of them wins, its evaluation is recomputed
     from the genome at the end. *)
  let first_restart, engine_resume =
    match resume with
    | None -> (0, ref None)
    | Some state -> (state.next_restart, ref state.engine)
  in
  let summaries =
    ref
      (match resume with
      | None -> []
      | Some state -> List.map (fun s -> (s, None)) state.completed)
  in
  for restart = first_restart to restarts - 1 do
    Mm_obs.Probe.run
      ~args:(fun () -> [ ("restart", string_of_int restart) ])
      p_restart
      (fun () ->
        let resume_ck = !engine_resume in
        engine_resume := None;
        (* An in-flight engine checkpoint was taken after this restart's
           [Prng.split]; splitting again would desynchronise the outer
           stream.  The child rng passed alongside a resume is superseded
           by the checkpointed state and never consumed. *)
        let child_rng =
          match resume_ck with None -> Prng.split rng | Some _ -> rng
        in
        let outer_state = Prng.state rng in
        let state_of engine =
          {
            seed;
            fingerprint;
            next_restart = restart;
            completed = List.map fst !summaries;
            outer_rng = outer_state;
            engine;
          }
        in
        (* Checkpoint persistence runs {e before} the yield callback: a
           cooperative scheduler suspends (and may be SIGKILLed) inside
           [yield], and the contract is that on-disk state is current at
           every suspension point. *)
        let summary, best_info =
          if use_islands then begin
            let topology =
              {
                Islands.islands = config.islands;
                migration_interval = config.migration_interval;
                migration_count = config.migration_count;
              }
            in
            let resume_islands =
              match resume_ck with
              | None -> None
              | Some (Sharded ck) -> Some ck
              | Some (Single _) ->
                invalid_arg
                  "Synthesis.run: snapshot carries single-engine state but \
                   islands are enabled"
            in
            (* The island model suspends at migration epochs, not at
               every generation: checkpoints and yields fire once per
               epoch (epochs are [migration_interval] generations
               apart), always from the owner domain. *)
            let on_epoch =
              match (checkpoint, yield) with
              | None, None -> None
              | _ ->
                Some
                  (fun (ck : Islands.checkpoint) ->
                    let fold f init =
                      Array.fold_left
                        (fun acc (m : Engine.checkpoint) -> f acc m)
                        init ck.Islands.members
                    in
                    (match checkpoint with
                    | Some sink when sink.every > 0 ->
                      save_state sink (state_of (Some (Sharded ck)))
                    | Some _ | None -> ());
                    match yield with
                    | None -> ()
                    | Some f ->
                      f
                        {
                          p_restart = restart;
                          p_generation =
                            fold (fun acc m -> max acc m.Engine.generation) 0;
                          p_best_fitness =
                            fold
                              (fun acc m -> Float.min acc (snd m.Engine.best))
                              infinity;
                          p_evaluations =
                            fold (fun acc m -> acc + m.Engine.evaluations) 0;
                          p_cache_hits =
                            fold (fun acc m -> acc + m.Engine.cache_hits) 0;
                        })
            in
            let r =
              Islands.run ~config:config.ga ~topology ?pool
                ~cache_capacity:config.eval_cache ?delta ?on_epoch
                ?resume:resume_islands ~rng:child_rng problem
            in
            let best = r.Islands.best in
            ( {
                r_genome = Array.copy best.Engine.best_genome;
                r_fitness = best.Engine.best_fitness;
                r_generations = r.Islands.generations;
                r_evaluations = r.Islands.evaluations;
                r_cache_hits = r.Islands.cache_hits;
                r_history = best.Engine.history;
              },
              best.Engine.best_info )
          end
          else begin
            let resume_engine =
              match resume_ck with
              | None -> None
              | Some (Single ck) -> Some ck
              | Some (Sharded _) ->
                invalid_arg
                  "Synthesis.run: snapshot carries island state but islands \
                   are disabled"
            in
            let on_generation =
              match (checkpoint, yield) with
              | None, None -> None
              | _ ->
                Some
                  (fun (ck : Engine.checkpoint) ->
                    (match checkpoint with
                    | Some sink
                      when sink.every > 0
                           && ck.Engine.generation mod sink.every = 0 ->
                      save_state sink (state_of (Some (Single ck)))
                    | Some _ | None -> ());
                    match yield with
                    | None -> ()
                    | Some f ->
                      f
                        {
                          p_restart = restart;
                          p_generation = ck.Engine.generation;
                          p_best_fitness = snd ck.Engine.best;
                          p_evaluations = ck.Engine.evaluations;
                          p_cache_hits = ck.Engine.cache_hits;
                        })
            in
            let result =
              Engine.run ~config:config.ga ~strategy ?delta ?on_generation
                ?resume:resume_engine ~rng:child_rng problem
            in
            (summarize result, result.Engine.best_info)
          end
        in
        Log.debug (fun () ->
            Printf.sprintf "seed %d restart %d/%d: fitness %.6g in %d generations"
              seed (restart + 1) restarts summary.r_fitness
              summary.r_generations);
        summaries := !summaries @ [ (summary, Some best_info) ];
        (match checkpoint with
        | None -> ()
        | Some sink ->
          save_state sink
            {
              seed;
              fingerprint;
              next_restart = restart + 1;
              completed = List.map fst !summaries;
              outer_rng = Prng.state rng;
              engine = None;
            });
        (* One more suspension point between restarts, right after the
           between-restart checkpoint: a cancel or crash here resumes
           from restart + 1 with nothing lost. *)
        match yield with
        | None -> ()
        | Some f ->
          f
            {
              p_restart = restart;
              p_generation = summary.r_generations;
              p_best_fitness = summary.r_fitness;
              p_evaluations = summary.r_evaluations;
              p_cache_hits = summary.r_cache_hits;
            })
  done;
  let cpu_seconds = Sys.time () -. started in
  let best_summary, best_eval =
    match !summaries with
    | [] -> assert false (* restarts >= 1 and resume summaries are checked *)
    | first :: rest ->
      List.fold_left
        (fun ((bs, _) as acc) ((s, _) as cand) ->
          if s.r_fitness < bs.r_fitness then cand else acc)
        first rest
  in
  let eval =
    match best_eval with
    | Some eval -> eval
    | None ->
      (* The winning restart was replayed from a snapshot; evaluation is
         pure, so recomputing it from the genome reproduces the
         evaluation the interrupted run held, bit-for-bit. *)
      Fitness.evaluate fitness_config spec best_summary.r_genome
  in
  let total f = List.fold_left (fun acc (s, _) -> acc + f s) 0 !summaries in
  Log.info (fun () ->
      Printf.sprintf
        "synthesis seed %d: power %.6g W, fitness %.6g, %d evaluations, %.2fs CPU" seed
        eval.Fitness.true_power best_summary.r_fitness
        (total (fun s -> s.r_evaluations))
        cpu_seconds);
  (* The audit re-derives the winning evaluation's claims independently
     of the scheduler and the scaler; a dirty report is surfaced, not
     raised — the caller decides whether it is fatal. *)
  let audit =
    if config.audit then begin
      let report = Audit.check ~config:fitness_config ~spec eval in
      if not report.Audit.clean then
        Log.warn (fun () -> Format.asprintf "%a" Audit.pp_report report);
      Some report
    end
    else None
  in
  {
    genome = best_summary.r_genome;
    eval;
    generations = total (fun s -> s.r_generations);
    evaluations = total (fun s -> s.r_evaluations);
    cache_hits = total (fun s -> s.r_cache_hits);
    cpu_seconds;
    history = best_summary.r_history;
    audit;
  }

let average_power result = result.eval.Fitness.true_power
