(** A co-synthesis problem: OMSM specification + allocated architecture +
    technology library, with the gene/position bookkeeping shared by the
    mapping GA, the fitness evaluation and the improvement operators. *)

type t

type position = { mode : int; task : int }
(** One slot of the multi-mode mapping string. *)

exception Invalid of string

val make :
  omsm:Mm_omsm.Omsm.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  t
(** Validates that every task of every mode has at least one candidate PE
    in the technology library; raises {!Invalid} otherwise. *)

val omsm : t -> Mm_omsm.Omsm.t
val arch : t -> Mm_arch.Architecture.t
val tech : t -> Mm_arch.Tech_lib.t

type compiled
(** The compile-once evaluation context (DESIGN.md §10): the
    architecture's route table, the technology library's dense dispatch
    table, and the per-mode memo caches of the fitness pipeline —
    everything mapping-independent, hoisted out of the per-candidate
    path. *)

val compiled : t -> compiled
(** The context of this specification, built on first use and memoized
    (domain-safe: concurrent first calls race benignly on identical
    values).  Purely an accelerator — results never depend on when or
    whether it was built. *)

val routes : compiled -> Mm_sched.Comm_mapping.table
val dispatch : compiled -> Mm_arch.Tech_lib.dispatch

val mode_mobility_cache : compiled -> Mm_taskgraph.Mobility.t Mm_parallel.Memo.t
(** This domain's per-mode mobility cache, keyed by (mode, mapping row).
    Domain-local because {!Mm_parallel.Memo} is not thread-safe. *)

val mode_eval_cache :
  compiled ->
  (Mm_sched.Schedule.t * Mm_dvs.Scaling.t * Mm_energy.Power.mode_power)
  Mm_parallel.Memo.t
(** This domain's per-mode (schedule, scaling, power) cache, keyed by
    (mode, scheduler/DVS config fingerprint, mapping row, core-instance
    signature). *)

val scaling_workspace : compiled -> Mm_dvs.Scaling.workspace
(** This domain's scratch buffers for the flat DVS kernel
    ({!Mm_dvs.Scaling.run}); domain-local because the workspace is
    mutable and reused across evaluations. *)

val n_positions : t -> int
(** Genome length: Σ_O |T_O|. *)

val position : t -> int -> position
val index_of : t -> mode:int -> task:int -> int
(** Inverse of {!position}. *)

val candidates : t -> int -> Mm_arch.Pe.t array
(** Candidate PEs of a position (PEs implementing the task's type), in id
    order.  Gene value [g] at position [i] selects [(candidates t i).(g)]. *)

val gene_counts : t -> int array
val candidate_index : t -> int -> pe_id:int -> int option
(** Gene value mapping the position onto the given PE, when supported. *)

val mode_task_count : t -> int -> int
val task_at : t -> int -> Mm_taskgraph.Task.t
(** The task behind a position. *)

val type_of_id : t -> int -> Mm_taskgraph.Task_type.t option
(** Look a task type up by its id (types appearing in the OMSM only). *)

val core_area : t -> pe:int -> ty_id:int -> float
(** Core area the type occupies on the PE; 0 when the pair has no
    implementation (or the PE is software). *)
