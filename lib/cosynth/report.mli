(** Human-readable reporting of synthesis results. *)

val pp_eval : Spec.t -> Format.formatter -> Fitness.eval -> unit
(** Mapping, per-mode power breakdown (with shut-down components),
    penalty factors and transition times. *)

val pp_result : Spec.t -> Format.formatter -> Synthesis.result -> unit
(** {!pp_eval} plus GA run statistics and, when the run was audited,
    the audit verdict (clean, or the full violation report). *)

val print_result : Spec.t -> Synthesis.result -> unit
(** [pp_result] to stdout. *)

val pp_fleet : Format.formatter -> Mm_energy.Fleet_sim.result -> unit
(** Fleet-simulation distribution summary: device count, mean power vs
    the analytic Eq. 1 figure, and the battery-lifetime percentiles. *)

val print_fleet : Mm_energy.Fleet_sim.result -> unit
(** [pp_fleet] to stdout. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Summary of the current {!Mm_obs.Metrics} snapshot — non-zero
    counters plus count/total/mean/max for every populated histogram.
    Prints nothing while metrics collection is disabled. *)

val print_metrics : unit -> unit
(** [pp_metrics] to stdout. *)
