(** Human-readable reporting of synthesis results. *)

val pp_eval : Spec.t -> Format.formatter -> Fitness.eval -> unit
(** Mapping, per-mode power breakdown (with shut-down components),
    penalty factors and transition times. *)

val pp_result : Spec.t -> Format.formatter -> Synthesis.result -> unit
(** {!pp_eval} plus GA run statistics. *)

val print_result : Spec.t -> Synthesis.result -> unit
(** [pp_result] to stdout. *)
