type t = { id : int; name : string }

let make ~id ~name =
  if id < 0 then invalid_arg "Task_type.make: negative id";
  { id; name }

let id t = t.id
let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id
let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
