type edge = { src : int; dst : int; data : float }

type t = {
  name : string;
  tasks : Task.t array;
  edges : edge list;
  succ_edges : edge list array;
  pred_edges : edge list array;
  topo : int array;
  (* CSR mirrors of the adjacency lists, built once by [make]: flat
     edge-id arrays sliced by per-task offsets, in exactly the same
     iteration order as the lists, so hot-path folds neither allocate
     nor chase cons cells — and so list and CSR traversals see the same
     float-operation order. *)
  edge_arr : edge array;  (* all edges; the id of an edge is its index here. *)
  succ_off : int array;  (* length n+1; slice [succ_off.(i), succ_off.(i+1)). *)
  succ_ids : int array;
  pred_off : int array;
  pred_ids : int array;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* Kahn's algorithm with a smallest-id frontier so that the returned order
   is deterministic and independent of edge insertion order. *)
let kahn_topological name n pred_edges succ_edges =
  let indegree = Array.init n (fun i -> List.length pred_edges.(i)) in
  let frontier = ref [] in
  for i = n - 1 downto 0 do
    if indegree.(i) = 0 then frontier := i :: !frontier
  done;
  let order = Array.make n (-1) in
  let rec loop k = function
    | [] ->
      if k < n then invalid "graph %s contains a cycle" name;
      ()
    | i :: rest ->
      order.(k) <- i;
      let released =
        List.filter_map
          (fun e ->
            indegree.(e.dst) <- indegree.(e.dst) - 1;
            if indegree.(e.dst) = 0 then Some e.dst else None)
          succ_edges.(i)
      in
      loop (k + 1) (List.merge Int.compare (List.sort Int.compare released) rest)
  in
  loop 0 !frontier;
  order

let make ~name ~tasks ~edges =
  let n = Array.length tasks in
  if n = 0 then invalid "graph %s has no tasks" name;
  Array.iteri
    (fun i task ->
      if Task.id task <> i then
        invalid "graph %s: tasks.(%d) has id %d" name i (Task.id task))
    tasks;
  let succ_edges = Array.make n [] in
  let pred_edges = Array.make n [] in
  let succ_id_lists = Array.make n [] in
  let pred_id_lists = Array.make n [] in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun id e ->
      if e.src < 0 || e.src >= n || e.dst < 0 || e.dst >= n then
        invalid "graph %s: edge %d->%d out of range" name e.src e.dst;
      if e.src = e.dst then invalid "graph %s: self-loop on %d" name e.src;
      if e.data < 0.0 then invalid "graph %s: negative data on %d->%d" name e.src e.dst;
      if Hashtbl.mem seen (e.src, e.dst) then
        invalid "graph %s: duplicate edge %d->%d" name e.src e.dst;
      Hashtbl.add seen (e.src, e.dst) ();
      succ_edges.(e.src) <- e :: succ_edges.(e.src);
      pred_edges.(e.dst) <- e :: pred_edges.(e.dst);
      succ_id_lists.(e.src) <- id :: succ_id_lists.(e.src);
      pred_id_lists.(e.dst) <- id :: pred_id_lists.(e.dst))
    edges;
  let edge_arr = Array.of_list edges in
  let csr id_lists =
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + List.length id_lists.(i)
    done;
    let ids = Array.make off.(n) 0 in
    Array.iteri
      (fun i l -> List.iteri (fun k id -> ids.(off.(i) + k) <- id) l)
      id_lists;
    (off, ids)
  in
  let succ_off, succ_ids = csr succ_id_lists in
  let pred_off, pred_ids = csr pred_id_lists in
  let topo = kahn_topological name n pred_edges succ_edges in
  {
    name;
    tasks = Array.copy tasks;
    edges;
    succ_edges;
    pred_edges;
    topo;
    edge_arr;
    succ_off;
    succ_ids;
    pred_off;
    pred_ids;
  }

let name t = t.name
let n_tasks t = Array.length t.tasks
let n_edges t = Array.length t.edge_arr
let task t i = t.tasks.(i)
let tasks t = Array.copy t.tasks
let edges t = t.edges
let edge t id = t.edge_arr.(id)
let succ_edges t i = t.succ_edges.(i)
let pred_edges t i = t.pred_edges.(i)
let succs t i = List.map (fun e -> e.dst) t.succ_edges.(i)
let preds t i = List.map (fun e -> e.src) t.pred_edges.(i)
let out_degree t i = t.succ_off.(i + 1) - t.succ_off.(i)
let in_degree t i = t.pred_off.(i + 1) - t.pred_off.(i)

let fold_succ_edges t i ~init ~f =
  let acc = ref init in
  for k = t.succ_off.(i) to t.succ_off.(i + 1) - 1 do
    acc := f !acc t.edge_arr.(t.succ_ids.(k))
  done;
  !acc

let fold_pred_edges t i ~init ~f =
  let acc = ref init in
  for k = t.pred_off.(i) to t.pred_off.(i + 1) - 1 do
    acc := f !acc t.edge_arr.(t.pred_ids.(k))
  done;
  !acc

let iter_succ_edges t i f =
  for k = t.succ_off.(i) to t.succ_off.(i + 1) - 1 do
    let id = t.succ_ids.(k) in
    f id t.edge_arr.(id)
  done

let iter_pred_edges t i f =
  for k = t.pred_off.(i) to t.pred_off.(i + 1) - 1 do
    let id = t.pred_ids.(k) in
    f id t.edge_arr.(id)
  done

let sources t =
  List.filter (fun i -> t.pred_edges.(i) = []) (List.init (n_tasks t) Fun.id)

let sinks t =
  List.filter (fun i -> t.succ_edges.(i) = []) (List.init (n_tasks t) Fun.id)

let topological_order t = Array.copy t.topo

let task_types t =
  Array.fold_left (fun acc task -> Task_type.Set.add (Task.ty task) acc)
    Task_type.Set.empty t.tasks

let tasks_of_type t ty =
  List.filter (fun i -> Task_type.equal (Task.ty t.tasks.(i)) ty)
    (List.init (n_tasks t) Fun.id)

let fold_tasks f t acc = Array.fold_left (fun acc task -> f task acc) acc t.tasks
let iter_tasks f t = Array.iter f t.tasks

let longest_path_length t ~weight =
  let n = n_tasks t in
  let finish = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let ready =
        List.fold_left (fun acc e -> Float.max acc finish.(e.src)) 0.0 t.pred_edges.(i)
      in
      finish.(i) <- ready +. weight t.tasks.(i))
    t.topo;
  Array.fold_left Float.max 0.0 finish

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n" t.name);
  Array.iter
    (fun task ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d [label=\"%s\\n%s\"];\n" (Task.id task)
           (Task.name task)
           (Task_type.name (Task.ty task))))
    t.tasks;
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  t%d -> t%d [label=\"%g\"];\n" e.src e.dst e.data))
    t.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf t =
  Format.fprintf ppf "graph %s: %d tasks, %d edges" t.name (n_tasks t) (n_edges t)
