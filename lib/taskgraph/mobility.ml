type t = {
  asap : float array;
  alap : float array;
  exec : float array;
  horizon : float;
}

let compute g ~exec_time ~comm_time ~horizon =
  let n = Graph.n_tasks g in
  let exec = Array.init n (fun i -> exec_time (Graph.task g i)) in
  let topo = Graph.topological_order g in
  let asap = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let ready =
        List.fold_left
          (fun acc (e : Graph.edge) ->
            Float.max acc (asap.(e.src) +. exec.(e.src) +. comm_time e))
          0.0 (Graph.pred_edges g i)
      in
      asap.(i) <- ready)
    topo;
  let makespan =
    Array.fold_left Float.max 0.0 (Array.init n (fun i -> asap.(i) +. exec.(i)))
  in
  let anchor = Float.max horizon makespan in
  let alap = Array.make n Float.infinity in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let latest_finish =
      List.fold_left
        (fun acc (e : Graph.edge) -> Float.min acc (alap.(e.dst) -. comm_time e))
        anchor (Graph.succ_edges g i)
    in
    let latest_finish =
      match Task.deadline (Graph.task g i) with
      | None -> latest_finish
      | Some d -> Float.min latest_finish d
    in
    (* An unreachable deadline (the task's own, or one inherited through
       successors) would drive ALAP below ASAP and produce negative
       mobility; clamp to the ASAP finish instead so the task is simply
       marked critical. *)
    let latest_finish = Float.max latest_finish (asap.(i) +. exec.(i)) in
    alap.(i) <- latest_finish -. exec.(i)
  done;
  { asap; alap; exec; horizon = anchor }

let mobility t i = t.alap.(i) -. t.asap.(i)

let makespan t =
  let n = Array.length t.asap in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (t.asap.(i) +. t.exec.(i))
  done;
  !m

let is_critical ?(eps = 1e-9) t i = mobility t i < eps

let windows_overlap t i j =
  let start_i = t.asap.(i) and finish_i = t.alap.(i) +. t.exec.(i) in
  let start_j = t.asap.(j) and finish_j = t.alap.(j) +. t.exec.(j) in
  start_i < finish_j && start_j < finish_i
