type t = {
  asap : float array;
  alap : float array;
  exec : float array;
  horizon : float;
}

(* One core for both entry points: [comm] is keyed by edge id and edge,
   so the seed closure-per-edge interface and the compiled
   decisions-array interface run the exact same float operations in the
   exact same (CSR) order. *)
let compute_core g ~exec ~comm ~horizon =
  let n = Graph.n_tasks g in
  let topo = Graph.topological_order g in
  let asap = Array.make n 0.0 in
  Array.iter
    (fun i ->
      let ready = ref 0.0 in
      Graph.iter_pred_edges g i (fun id (e : Graph.edge) ->
          ready := Float.max !ready (asap.(e.src) +. exec.(e.src) +. comm id e));
      asap.(i) <- !ready)
    topo;
  let makespan =
    Array.fold_left Float.max 0.0 (Array.init n (fun i -> asap.(i) +. exec.(i)))
  in
  let anchor = Float.max horizon makespan in
  let alap = Array.make n Float.infinity in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let latest_finish = ref anchor in
    Graph.iter_succ_edges g i (fun id (e : Graph.edge) ->
        latest_finish := Float.min !latest_finish (alap.(e.dst) -. comm id e));
    let latest_finish =
      match Task.deadline (Graph.task g i) with
      | None -> !latest_finish
      | Some d -> Float.min !latest_finish d
    in
    (* An unreachable deadline (the task's own, or one inherited through
       successors) would drive ALAP below ASAP and produce negative
       mobility; clamp to the ASAP finish instead so the task is simply
       marked critical. *)
    let latest_finish = Float.max latest_finish (asap.(i) +. exec.(i)) in
    alap.(i) <- latest_finish -. exec.(i)
  done;
  { asap; alap; exec; horizon = anchor }

let compute g ~exec_time ~comm_time ~horizon =
  let n = Graph.n_tasks g in
  let exec = Array.init n (fun i -> exec_time (Graph.task g i)) in
  compute_core g ~exec ~comm:(fun _ e -> comm_time e) ~horizon

let compute_indexed g ~exec ~comm_time ~horizon =
  if Array.length exec <> Graph.n_tasks g then
    invalid_arg "Mobility.compute_indexed: exec length mismatch";
  compute_core g ~exec ~comm:(fun id _ -> comm_time id) ~horizon

let mobility t i = t.alap.(i) -. t.asap.(i)

let makespan t =
  let n = Array.length t.asap in
  let m = ref 0.0 in
  for i = 0 to n - 1 do
    m := Float.max !m (t.asap.(i) +. t.exec.(i))
  done;
  !m

let is_critical ?(eps = 1e-9) t i = mobility t i < eps

let windows_overlap t i j =
  let start_i = t.asap.(i) and finish_i = t.alap.(i) +. t.exec.(i) in
  let start_j = t.asap.(j) and finish_j = t.alap.(j) +. t.exec.(j) in
  start_i < finish_j && start_j < finish_i
