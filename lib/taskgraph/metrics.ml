type t = {
  n_tasks : int;
  n_edges : int;
  n_types : int;
  depth : int;
  width : int;
  parallelism : float;
  max_in_degree : int;
  max_out_degree : int;
  edge_density : float;
}

let levels graph =
  let n = Graph.n_tasks graph in
  let level = Array.make n 0 in
  Array.iter
    (fun i ->
      let from_preds =
        List.fold_left (fun acc p -> max acc (level.(p) + 1)) 0 (Graph.preds graph i)
      in
      level.(i) <- from_preds)
    (Graph.topological_order graph);
  level

let compute graph =
  let n = Graph.n_tasks graph in
  let level = levels graph in
  let depth = 1 + Array.fold_left max 0 level in
  let per_level = Array.make depth 0 in
  Array.iter (fun l -> per_level.(l) <- per_level.(l) + 1) level;
  let width = Array.fold_left max 0 per_level in
  let max_in_degree = ref 0 and max_out_degree = ref 0 in
  for i = 0 to n - 1 do
    max_in_degree := max !max_in_degree (List.length (Graph.preds graph i));
    max_out_degree := max !max_out_degree (List.length (Graph.succs graph i))
  done;
  let n_edges = Graph.n_edges graph in
  {
    n_tasks = n;
    n_edges;
    n_types = Task_type.Set.cardinal (Graph.task_types graph);
    depth;
    width;
    parallelism = float_of_int n /. float_of_int depth;
    max_in_degree = !max_in_degree;
    max_out_degree = !max_out_degree;
    edge_density =
      (if n <= 1 then 0.0
       else float_of_int n_edges /. (float_of_int (n * (n - 1)) /. 2.0));
  }

let pp ppf m =
  Format.fprintf ppf
    "%d tasks, %d edges, %d types, depth %d, width %d, parallelism %.2f" m.n_tasks
    m.n_edges m.n_types m.depth m.width m.parallelism
