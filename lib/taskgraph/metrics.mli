(** Structural metrics of task graphs.

    Used by the benchmark generator's reports and the CLI's [show]
    command to characterise workloads (the paper describes its graphs by
    node/edge counts; depth and width additionally capture how much
    parallelism a mode offers the mapper). *)

type t = {
  n_tasks : int;
  n_edges : int;
  n_types : int;  (** Distinct task types. *)
  depth : int;  (** Longest path, counted in tasks (>= 1). *)
  width : int;  (** Largest number of tasks at one precedence level. *)
  parallelism : float;  (** n_tasks / depth: average exploitable width. *)
  max_in_degree : int;
  max_out_degree : int;
  edge_density : float;
      (** n_edges / (n_tasks·(n_tasks−1)/2), 0 for single-task graphs. *)
}

val compute : Graph.t -> t

val levels : Graph.t -> int array
(** Per task: its precedence level (longest path from any source, in
    edges; sources are level 0). *)

val pp : Format.formatter -> t -> unit
