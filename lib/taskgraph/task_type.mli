(** Task types (η in the paper).

    A task type identifies a unit of functionality — an FFT, a Huffman
    decoder, an IDCT… — independent of where it appears.  Tasks of the
    same type found in different operational modes can share a hardware
    core; the technology library is keyed by task type, not by task. *)

type t = private { id : int; name : string }

val make : id:int -> name:string -> t
(** [id] must be non-negative.  [name] is for reporting only; identity is
    the [id]. *)

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
