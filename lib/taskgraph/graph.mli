(** Per-mode task graphs G_S(T, C): directed acyclic graphs of typed tasks
    with data-carrying precedence edges. *)

type edge = {
  src : int;  (** Producing task id. *)
  dst : int;  (** Consuming task id. *)
  data : float;  (** Amount of data transferred (abstract units >= 0). *)
}

type t

exception Invalid of string
(** Raised by {!make} when the graph is malformed (non-contiguous task
    ids, dangling edge endpoints, self-loops, duplicate edges, cycles,
    negative data). *)

val make : name:string -> tasks:Task.t array -> edges:edge list -> t
(** Validates and freezes a graph.  [tasks.(i)] must have id [i]. *)

val name : t -> string
val n_tasks : t -> int
val n_edges : t -> int
val task : t -> int -> Task.t
val tasks : t -> Task.t array
(** The returned array is a copy; mutation does not affect the graph. *)

val edges : t -> edge list
val edge : t -> int -> edge
(** The edge with the given id.  Edge ids are [0 .. n_edges-1], assigned
    in the order the edges were given to {!make}; they key the per-run
    route-decision tables of the scheduler. *)

val succs : t -> int -> int list
val preds : t -> int -> int list
val succ_edges : t -> int -> edge list
val pred_edges : t -> int -> edge list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val fold_succ_edges : t -> int -> init:'a -> f:('a -> edge -> 'a) -> 'a
(** Allocation-free fold over [succ_edges t i], in exactly the same
    order (the hot-path CSR replacement for folding the list). *)

val fold_pred_edges : t -> int -> init:'a -> f:('a -> edge -> 'a) -> 'a

val iter_succ_edges : t -> int -> (int -> edge -> unit) -> unit
(** Like {!fold_succ_edges} but passing each edge's id alongside. *)

val iter_pred_edges : t -> int -> (int -> edge -> unit) -> unit
val sources : t -> int list
(** Tasks without predecessors, in id order. *)

val sinks : t -> int list
(** Tasks without successors, in id order. *)

val topological_order : t -> int array
(** A fixed topological order (Kahn's algorithm with smallest-id tie
    breaking, so the order is deterministic). *)

val task_types : t -> Task_type.Set.t
(** Distinct types appearing in the graph. *)

val tasks_of_type : t -> Task_type.t -> int list
val fold_tasks : (Task.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_tasks : (Task.t -> unit) -> t -> unit

val longest_path_length : t -> weight:(Task.t -> float) -> float
(** Critical-path length under node weights [weight] (edge costs
    ignored). *)

val to_dot : t -> string
(** Graphviz rendering for debugging and documentation. *)

val pp : Format.formatter -> t -> unit
