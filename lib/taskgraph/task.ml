type t = {
  id : int;
  name : string;
  ty : Task_type.t;
  deadline : float option;
}

let make ~id ~name ~ty ?deadline () =
  if id < 0 then invalid_arg "Task.make: negative id";
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Task.make: non-positive deadline"
  | Some _ | None -> ());
  { id; name; ty; deadline }

let id t = t.id
let name t = t.name
let ty t = t.ty
let deadline t = t.deadline

let pp ppf t =
  Format.fprintf ppf "τ%d(%s:%a%t)" t.id t.name Task_type.pp t.ty (fun ppf ->
      match t.deadline with
      | None -> ()
      | Some d -> Format.fprintf ppf ",θ=%g" d)
