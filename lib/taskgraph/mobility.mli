(** ASAP/ALAP analysis and task mobility.

    The GA's core-allocation step (paper §4.1, lines 4–5) allocates extra
    hardware core instances to parallel tasks with low mobility; the list
    scheduler also prioritises tasks by mobility.  Both use this module.

    Times are computed against caller-supplied execution-time and
    communication-time estimates so the analysis can run before (using
    nominal estimates) or after (using mapped values) a mapping is
    fixed. *)

type t = private {
  asap : float array;  (** Earliest start time per task. *)
  alap : float array;  (** Latest start time per task. *)
  exec : float array;  (** The execution-time estimate used. *)
  horizon : float;  (** The ALAP anchor actually used. *)
}

val compute :
  Graph.t ->
  exec_time:(Task.t -> float) ->
  comm_time:(Graph.edge -> float) ->
  horizon:float ->
  t
(** [compute g ~exec_time ~comm_time ~horizon] computes ASAP and ALAP
    start times.  ALAP is anchored at [max horizon makespan] (so mobility
    is never negative even when the graph cannot meet [horizon]), and
    individual task deadlines additionally cap each task's latest finish
    time — unless the deadline is itself unreachable, in which case the
    ASAP finish is used as the cap (mobility 0). *)

val compute_indexed :
  Graph.t ->
  exec:float array ->
  comm_time:(int -> float) ->
  horizon:float ->
  t
(** Like {!compute}, for callers that already hold per-task execution
    times and per-edge-id communication times (the compiled evaluation
    path): same algorithm, same float-operation order, no per-task
    closure calls.  [comm_time] is keyed by edge id (see
    {!Graph.edge}).  Raises [Invalid_argument] when [exec] does not
    have one entry per task. *)

val mobility : t -> int -> float
(** [alap.(i) - asap.(i)]; 0 marks a critical task. *)

val makespan : t -> float
(** ASAP makespan: critical-path length including communications. *)

val is_critical : ?eps:float -> t -> int -> bool
(** Mobility below [eps] (default 1e-9). *)

val windows_overlap : t -> int -> int -> bool
(** Whether the ASAP–(ALAP+exec) execution windows of two tasks overlap,
    i.e. whether the tasks can possibly run in parallel. *)
