(** Tasks (τ in the paper): atomic, non-preemptible units of functionality
    inside one operational mode's task graph. *)

type t = private {
  id : int;  (** Index within the owning graph; contiguous from 0. *)
  name : string;
  ty : Task_type.t;
  deadline : float option;
      (** Optional individual deadline θ_τ relative to the graph activation
          (seconds).  The graph repetition period always also bounds
          completion. *)
}

val make : id:int -> name:string -> ty:Task_type.t -> ?deadline:float -> unit -> t
(** Raises [Invalid_argument] on a negative id or a non-positive
    deadline. *)

val id : t -> int
val name : t -> string
val ty : t -> Task_type.t
val deadline : t -> float option
val pp : Format.formatter -> t -> unit
