module Prng = Mm_util.Prng

exception Injected of string

type spec = { probability : float; limit : int; delay : float }

(* One armed site's decision state.  The mutex serialises draws from
   pool worker domains; a draw is two mutex ops and one SplitMix64
   step, fine for fault-injection frequencies. *)
type cell = {
  mutex : Mutex.t;
  rng : Prng.t;
  spec : spec;
  mutable remaining : int;  (* -1 = unlimited *)
  mutable count : int;
}

type site = { site_name : string; mutable cell : cell option }

let name s = s.site_name

(* The intern table maps names to sites so arming can reach sites
   registered anywhere in the program, and so hot paths hold the site
   record directly (disarmed check = one immutable-field read). *)
let intern_mutex = Mutex.create ()
let interned : (string, site) Hashtbl.t = Hashtbl.create 16
let is_armed = ref false

let site name =
  Mutex.lock intern_mutex;
  let s =
    match Hashtbl.find_opt interned name with
    | Some s -> s
    | None ->
      let s = { site_name = name; cell = None } in
      Hashtbl.add interned name s;
      s
  in
  Mutex.unlock intern_mutex;
  s

(* FNV-1a 64-bit of the site name, folded to a non-negative stream
   index: the decision stream depends on (seed, name) alone, never on
   registration order or cross-site interleaving. *)
let stream_index name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    name;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFL)

(* --- plans -------------------------------------------------------------- *)

type plan = (string * spec) list

let spec_of_fields name fields =
  let bad what = Error (Printf.sprintf "%s: %s" name what) in
  let float_field what s =
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> Ok v
    | _ -> Error (Printf.sprintf "%s: %s is not a finite number (%s)" name what s)
  in
  match fields with
  | [] -> bad "missing probability"
  | prob :: rest -> (
    match float_field "probability" prob with
    | Error _ as e -> e
    | Ok probability when probability < 0.0 || probability > 1.0 ->
      bad (Printf.sprintf "probability %g is outside [0,1]" probability)
    | Ok probability -> (
      let limit, rest =
        match rest with
        | [] -> (Ok (-1), [])
        | l :: rest -> (
          ( (match int_of_string_opt l with
            | Some v when v >= -1 -> Ok v
            | _ -> bad (Printf.sprintf "limit %s is not an integer >= -1" l)),
            rest ))
      in
      match limit with
      | Error _ as e -> e
      | Ok limit -> (
        match rest with
        | [] -> Ok { probability; limit; delay = 0.0 }
        | [ d ] -> (
          match float_field "delay" d with
          | Error _ as e -> e
          | Ok delay when delay < 0.0 -> bad "delay must be non-negative"
          | Ok delay -> Ok { probability; limit; delay })
        | _ -> bad "too many fields (expected prob[:limit[:delay]])")))

let plan_of_string text =
  let entries =
    String.split_on_char ';' text
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | entry :: rest -> (
      match String.split_on_char ':' entry with
      | [] | [ _ ] ->
        Error (Printf.sprintf "%s: expected site:probability[:limit[:delay]]" entry)
      | name :: fields -> (
        if List.mem_assoc name acc then
          Error (Printf.sprintf "%s: duplicate site in plan" name)
        else
          match spec_of_fields name fields with
          | Error _ as e -> e
          | Ok spec -> parse ((name, spec) :: acc) rest))
  in
  parse [] entries

let plan_to_string plan =
  String.concat ";"
    (List.map
       (fun (name, s) ->
         if s.delay > 0.0 then
           Printf.sprintf "%s:%g:%d:%g" name s.probability s.limit s.delay
         else if s.limit >= 0 then
           Printf.sprintf "%s:%g:%d" name s.probability s.limit
         else Printf.sprintf "%s:%g" name s.probability)
       plan)

(* Every recoverable site; [registry.write_fail] is excluded on purpose
   (it fails the affected job, which would break the chaos smoke's
   byte-identity assertion). *)
let default_plan =
  String.concat ";"
    [
      "pool.worker_raise:0.05:20";
      "pool.worker_stall:0.05:10:0.002";
      "snapshot.short_write:0.25:4";
      "snapshot.enospc:0.25:4";
      "server.accept_drop:0.25:6";
      "server.read_eof:0.15:6";
      "server.garbage_frame:0.2:4";
      "scheduler.slice_delay:0.2:10:0.002";
    ]

(* --- arming ------------------------------------------------------------- *)

let arm ~seed plan =
  Mutex.lock intern_mutex;
  Hashtbl.iter (fun _ s -> s.cell <- None) interned;
  let root = Prng.create ~seed in
  List.iter
    (fun (name, spec) ->
      let s =
        match Hashtbl.find_opt interned name with
        | Some s -> s
        | None ->
          let s = { site_name = name; cell = None } in
          Hashtbl.add interned name s;
          s
      in
      s.cell <-
        Some
          {
            mutex = Mutex.create ();
            rng = Prng.stream root (stream_index name);
            spec;
            remaining = spec.limit;
            count = 0;
          })
    plan;
  is_armed := plan <> [];
  Mutex.unlock intern_mutex

let disarm () =
  Mutex.lock intern_mutex;
  Hashtbl.iter (fun _ s -> s.cell <- None) interned;
  is_armed := false;
  Mutex.unlock intern_mutex

let armed () = !is_armed

(* --- the hot-path check ------------------------------------------------- *)

let fire s =
  match s.cell with
  | None -> false
  | Some c ->
    Mutex.lock c.mutex;
    let hit = c.remaining <> 0 && Prng.chance c.rng c.spec.probability in
    if hit then begin
      c.count <- c.count + 1;
      if c.remaining > 0 then c.remaining <- c.remaining - 1
    end;
    Mutex.unlock c.mutex;
    hit

let raise_if s = if fire s then raise (Injected s.site_name)

let fire_delay s =
  match s.cell with
  | None -> 0.0
  | Some c -> if fire s then c.spec.delay else 0.0

let injected s = match s.cell with None -> 0 | Some c -> c.count

let report () =
  Mutex.lock intern_mutex;
  let rows =
    Hashtbl.fold
      (fun name s acc ->
        match s.cell with None -> acc | Some c -> (name, c.count) :: acc)
      interned []
  in
  Mutex.unlock intern_mutex;
  List.sort compare rows
