(** Deterministic, seeded fault injection.

    A {e site} is a named injection point compiled into a hot path —
    the pool's per-item apply, the snapshot writer, the daemon's accept
    loop.  Disarmed (the default, and the only state ordinary runs ever
    see) a site is a single branch on an immutable [None]: no
    allocation, no lock, no draw, so the benchmark gates never move.

    Arming installs a {e plan}: for each named site, a per-occurrence
    probability, an optional injection budget and an optional stall
    duration.  Every decision is drawn from a SplitMix64 stream derived
    from the chaos seed and the FNV-1a hash of the site's name alone,
    so the k-th occurrence at a site receives the same verdict for the
    same seed {e regardless} of how calls at other sites interleave —
    across [--jobs], across domains, across runs.  An injected failure
    sequence is therefore replayable bit-for-bit from
    [--chaos-seed]/[--chaos-plan].

    Plans travel as strings:

    {v site:probability[:limit[:delay]];site:... v}

    e.g. [pool.worker_raise:0.05:20;scheduler.slice_delay:0.2:10:0.002]
    — raise from 5% of pool items (at most 20 times) and stall 20% of
    scheduler slices (at most 10 times) for 2ms each. *)

type site
(** An interned injection point.  Obtain one with {!site} at module
    initialisation and keep it; the lookup is hashed, the hot-path
    check is a field read. *)

val site : string -> site
(** [site name] interns (or retrieves) the site called [name].  Calling
    it twice with the same name yields the same site. *)

val name : site -> string

exception Injected of string
(** Raised by {!raise_if}; the payload is the site name.  Deliberately
    a distinct exception so logs attribute the failure to chaos. *)

type spec = {
  probability : float;  (** Per-occurrence injection probability in [0,1]. *)
  limit : int;  (** Injection budget; [-1] means unlimited. *)
  delay : float;  (** Stall duration in seconds (delay sites only). *)
}

type plan = (string * spec) list

val plan_of_string : string -> (plan, string) result
(** Parse [site:prob[:limit[:delay]];...].  Total: every malformed
    field (bad float, probability outside [0,1], negative delay,
    duplicate site) becomes [Error]. *)

val plan_to_string : plan -> string
(** Inverse of {!plan_of_string} up to float formatting. *)

val default_plan : string
(** A plan exercising every {e recoverable} site — worker raises and
    stalls, torn and failed snapshot writes, dropped connections,
    garbage frames, scheduler stalls.  It deliberately excludes
    [registry.write_fail], which (by design) fails the affected job
    rather than recovering, and so would break the byte-identity
    property the chaos smoke enforces. *)

val arm : seed:int -> plan -> unit
(** Install [plan], seeding every listed site's decision stream from
    [seed] and the site name.  Sites absent from the plan are
    disarmed.  Re-arming with the same seed and plan replays the exact
    same injection sequence. *)

val disarm : unit -> unit
(** Return every site to the zero-cost disarmed state. *)

val armed : unit -> bool

val fire : site -> bool
(** [fire s] decides one occurrence at [s]: [true] with the armed
    probability while the budget lasts, always [false] when disarmed.
    Thread-safe; each verdict consumes one draw from the site's own
    stream. *)

val raise_if : site -> unit
(** Raise [Injected (name s)] when {!fire} says so. *)

val fire_delay : site -> float
(** The armed delay when {!fire} says so, [0.] otherwise.  The caller
    performs the sleep (this module never blocks). *)

val injected : site -> int
(** Injections performed at [s] since it was last armed. *)

val report : unit -> (string * int) list
(** Every armed site's name and injection count, sorted by name — the
    daemon logs this at shutdown so a chaos run's footprint is
    visible. *)
