(* Walk-through of the paper's Fig. 5: serialising the parallel core
   schedule of one hardware component into sequential segments so a
   single shared voltage rail can be scaled.

   The figure's scenario: five hardware tasks on two cores (core 0 runs
   τ0, τ2, τ4; core 1 runs τ1, τ3 in parallel), transformed into
   equivalent sequential segments whose powers are the sums of the
   concurrently active cores.

   Run with:  dune exec examples/dvs_transform.exe *)

module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource
module Hw = Mm_dvs.Hw_transform

let slot ~task ~instance ~start ~duration =
  ( {
      Schedule.task;
      resource = Resource.Hw_core { pe = 1; ty = task; instance };
      start;
      duration;
    },
    (* nominal dynamic power of the task's core (W) *)
    0.010 +. (0.002 *. float_of_int task) )

let () =
  (* Two cores, five tasks; τ1 and τ3 overlap τ0/τ2/τ4. *)
  let slots =
    [
      slot ~task:0 ~instance:0 ~start:0.0 ~duration:2.0;
      slot ~task:1 ~instance:1 ~start:0.0 ~duration:3.0;
      slot ~task:2 ~instance:0 ~start:2.0 ~duration:2.5;
      slot ~task:3 ~instance:1 ~start:3.0 ~duration:2.0;
      slot ~task:4 ~instance:0 ~start:4.5 ~duration:1.5;
    ]
  in
  let segments = Hw.segments ~slots in
  Format.printf "%d task slots on 2 cores -> %d sequential segments:@."
    (List.length slots) (List.length segments);
  List.iter
    (fun (s : Hw.segment) ->
      Format.printf
        "  segment %d: [%.1f, %.1f) duration %.1f, power %.4gW, running {%s}%s@."
        s.Hw.index s.Hw.start (s.Hw.start +. s.Hw.duration) s.Hw.duration s.Hw.power
        (String.concat "," (List.map string_of_int s.Hw.running))
        (match s.Hw.finishing with
        | [] -> ""
        | f -> Printf.sprintf "  (finishes %s)" (String.concat "," (List.map string_of_int f))))
    segments;
  (* Energy is preserved by the transformation. *)
  let task_energy =
    List.fold_left
      (fun acc ((s : Schedule.task_slot), power) -> acc +. (power *. s.Schedule.duration))
      0.0 slots
  in
  Format.printf "Σ task energy = %.6g J; Σ segment energy = %.6g J@." task_energy
    (Hw.total_energy_nominal segments);
  Format.printf "per-task segment spans:@.";
  List.iter
    (fun ((s : Schedule.task_slot), _) ->
      Format.printf "  τ%d: segments %d..%d@." s.Schedule.task
        (Hw.first_segment_of segments s.Schedule.task)
        (Hw.last_segment_of segments s.Schedule.task))
    slots
