(* Deriving the mode execution probabilities from usage statistics.

   The paper's probabilities Ψ come from "an average usage profile based
   on statistical information collected from several different users"
   (§2.1.1).  This example shows the pipeline on the smart phone: observed
   mode-switch counts and mean residence times yield a stationary usage
   profile; synthesising against the derived profile is then compared to
   synthesising against the paper's published one.

   Run with:  dune exec examples/usage_profile.exe *)

module Usage_profile = Mm_omsm.Usage_profile
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis

(* A week of (synthetic) usage logs: how often each mode change was
   observed.  Mode ids follow Fig. 1a (see Smartphone.mode_names). *)
let observations =
  [
    (1, 0, 120.0);   (* incoming / outgoing calls                  *)
    (0, 1, 120.0);
    (1, 2, 25.0);    (* network lost                               *)
    (2, 1, 25.0);    (* network found                              *)
    (1, 5, 60.0);    (* play audio                                 *)
    (5, 1, 60.0);
    (1, 3, 40.0);    (* take photo                                 *)
    (3, 4, 40.0);    (* decoded, show it                           *)
    (4, 1, 38.0);    (* terminate photo                            *)
    (4, 2, 2.0);
    (5, 6, 4.0);     (* network lost while playing                 *)
    (6, 5, 4.0);
    (2, 6, 2.0);     (* play audio without network                 *)
    (6, 2, 2.0);
    (2, 7, 2.0);     (* take photo without network                 *)
    (7, 4, 2.0);
  ]
  |> List.map (fun (src, dst, count) -> { Usage_profile.src; dst; count })

(* Mean residence time per visit (seconds): the phone idles in RLC for
   minutes, calls last ~100 s, a photo decode lasts a second... *)
let holding_time = function
  | 0 -> 110.0   (* GSM codec + RLC: a phone call       *)
  | 1 -> 900.0   (* Radio Link Control: idle, connected *)
  | 2 -> 60.0    (* Network Search                      *)
  | 3 -> 45.0    (* decode Photo + RLC                  *)
  | 4 -> 50.0    (* Show Photo                          *)
  | 5 -> 240.0   (* MP3 play + RLC: a few songs         *)
  | 6 -> 200.0   (* MP3 play + Network Search           *)
  | 7 -> 45.0    (* decode Photo + Network Search       *)
  | _ -> 1.0

let () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let omsm = Spec.omsm spec in
  let derived =
    Usage_profile.probabilities ~n_modes:(Omsm.n_modes omsm) ~holding_time observations
  in
  Format.printf "derived usage profile vs the paper's published one:@.";
  List.iter
    (fun mode ->
      Format.printf "  %-32s derived Ψ=%.3f   published Ψ=%.3f@." (Mode.name mode)
        derived.(Mode.id mode) (Mode.probability mode))
    (Omsm.modes omsm);
  (* Synthesise against the derived profile. *)
  let derived_omsm = Usage_profile.apply omsm ~holding_time observations in
  let derived_spec =
    Spec.make ~omsm:derived_omsm ~arch:(Spec.arch spec) ~tech:(Spec.tech spec)
  in
  let quick =
    {
      Synthesis.default_config with
      ga = { Mm_ga.Engine.default_config with max_generations = 60 };
    }
  in
  let on_published = Synthesis.run ~config:quick ~spec ~seed:3 () in
  let on_derived = Synthesis.run ~config:quick ~spec:derived_spec ~seed:3 () in
  Format.printf "@.average power when optimising for the published profile: %.4g mW@."
    (Synthesis.average_power on_published *. 1e3);
  Format.printf "average power when optimising for the derived profile:   %.4g mW@."
    (Synthesis.average_power on_derived *. 1e3);
  (* Cross-evaluation: how would the published-profile design behave under
     the derived usage? *)
  let cross =
    Fitness.evaluate_mapping Fitness.default_config derived_spec
      on_published.Synthesis.eval.Fitness.mapping
  in
  Format.printf
    "published-profile design re-evaluated under the derived profile: %.4g mW@."
    (cross.Fitness.true_power *. 1e3)
