(* The smart phone real-life benchmark (paper §5, Table 3), single run:
   synthesise the 8-mode OMSM of Fig. 1a onto the DVS-GPP + 2-ASIC
   architecture, with and without consideration of the mode usage
   profile, both without and with DVS.

   Run with:  dune exec examples/smartphone.exe
   (Pass --fast to use a smaller GA budget.) *)

module F = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Report = Mm_cosynth.Report
module Stats = Mm_util.Stats

let () =
  let fast = Array.exists (( = ) "--fast") Sys.argv in
  let spec = Mm_benchgen.Smartphone.spec () in
  let omsm = Mm_cosynth.Spec.omsm spec in
  Format.printf "smart phone: %a@." Mm_omsm.Omsm.pp omsm;
  List.iter
    (fun m ->
      Format.printf "  %-32s Ψ=%-5.2f φ=%gms, %d tasks@." (Mm_omsm.Mode.name m)
        (Mm_omsm.Mode.probability m)
        (Mm_omsm.Mode.period m *. 1e3)
        (Mm_omsm.Mode.n_tasks m))
    (Mm_omsm.Omsm.modes omsm);
  let ga =
    if fast then
      { Mm_ga.Engine.default_config with population_size = 24; max_generations = 40 }
    else Mm_ga.Engine.default_config
  in
  let synthesise ~weighting ~dvs =
    let config =
      { Synthesis.default_config with fitness = { F.default_config with weighting; dvs }; ga }
    in
    Synthesis.run ~config ~spec ~seed:11 ()
  in
  let report label result =
    Format.printf "@.--- %s: %.4g mW ---@." label
      (Synthesis.average_power result *. 1e3);
    Report.print_result spec result
  in
  let base_nodvs = synthesise ~weighting:F.Uniform ~dvs:F.No_dvs in
  let prop_nodvs = synthesise ~weighting:F.True_probabilities ~dvs:F.No_dvs in
  let dvs = F.Dvs Mm_dvs.Scaling.default_config in
  let base_dvs = synthesise ~weighting:F.Uniform ~dvs in
  let prop_dvs = synthesise ~weighting:F.True_probabilities ~dvs in
  report "w/o DVS, probabilities neglected " base_nodvs;
  report "w/o DVS, probabilities considered" prop_nodvs;
  report "DVS, probabilities neglected     " base_dvs;
  report "DVS, probabilities considered    " prop_dvs;
  let p r = Synthesis.average_power r in
  Format.printf
    "@.summary (paper Table 3 shape): %.4g -> %.4g mW (%.1f%%) w/o DVS; %.4g -> %.4g mW (%.1f%%) with DVS; overall %.1f%%@."
    (p base_nodvs *. 1e3) (p prop_nodvs *. 1e3)
    (Stats.percent_reduction ~from:(p base_nodvs) ~to_:(p prop_nodvs))
    (p base_dvs *. 1e3) (p prop_dvs *. 1e3)
    (Stats.percent_reduction ~from:(p base_dvs) ~to_:(p prop_dvs))
    (Stats.percent_reduction ~from:(p base_nodvs) ~to_:(p prop_dvs));
  (* Validate the analytic Eq. (1) figure against a simulated usage
     trace of the final implementation. *)
  let omsm = Mm_cosynth.Spec.omsm spec in
  let mode_powers = prop_dvs.Synthesis.eval.F.mode_powers in
  let rng = Mm_util.Prng.create ~seed:2026 in
  let sim =
    Mm_energy.Trace_sim.simulate ~omsm ~mode_powers ~horizon:100_000.0 rng
  in
  Format.printf
    "trace simulation (%d mode changes over 1e5 time units): empirical %.4g mW vs analytic %.4g mW@."
    sim.Mm_energy.Trace_sim.n_transitions
    (sim.Mm_energy.Trace_sim.empirical_power *. 1e3)
    (p prop_dvs *. 1e3);
  (* What the reduction buys in the unit users care about. *)
  let cell = Mm_energy.Battery.phone_cell in
  Format.printf
    "battery (650 mAh at 3.7 V): %.0f h -> %.0f h standby-mix lifetime (+%.0f%%)@."
    (Mm_energy.Battery.lifetime_hours cell ~average_power:(p base_nodvs))
    (Mm_energy.Battery.lifetime_hours cell ~average_power:(p prop_dvs))
    (Mm_energy.Battery.extension_percent cell ~from_power:(p base_nodvs)
       ~to_power:(p prop_dvs))
