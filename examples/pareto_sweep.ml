(* Exploring the power/area trade-off: how much hardware area does the
   smart phone's power budget actually need?

   Sweeps scaled copies of the architecture (ASIC capacities x0.05 ... x2)
   and prints the attainable average power per budget, marking the Pareto
   frontier.

   Run with:  dune exec examples/pareto_sweep.exe *)

module Pareto = Mm_cosynth.Pareto
module Synthesis = Mm_cosynth.Synthesis
module Engine = Mm_ga.Engine

let () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let config =
    {
      Synthesis.default_config with
      ga = { Engine.default_config with max_generations = 60; population_size = 30 };
      restarts = 1;
    }
  in
  let scales = [ 0.05; 0.15; 0.3; 0.5; 1.0; 2.0 ] in
  Format.printf "sweeping %d area budgets (this runs %d GA syntheses)...@."
    (List.length scales) (List.length scales);
  let points = Pareto.sweep ~config ~spec ~scales ~seed:9 () in
  let frontier = Pareto.frontier points in
  let t =
    Mm_util.Table.create ~title:"smart phone: attainable power vs hardware area budget"
      ~columns:[ "scale"; "HW capacity (cells)"; "HW used"; "power (mW)"; "feasible"; "Pareto" ]
  in
  List.iter
    (fun (p : Pareto.point) ->
      Mm_util.Table.add_row t
        [
          Printf.sprintf "%.2f" p.Pareto.area_scale;
          Printf.sprintf "%.0f" p.Pareto.hw_area_capacity;
          Printf.sprintf "%.0f" p.Pareto.hw_area_used;
          Printf.sprintf "%.3f" (p.Pareto.power *. 1e3);
          string_of_bool p.Pareto.feasible;
          (if List.memq p frontier then "*" else "");
        ])
    points;
  Mm_util.Table.print t
