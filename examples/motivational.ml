(* The paper's two motivational examples (§2.3), with the exact published
   numbers.

   Example 1 (Fig. 2): two modes with execution probabilities 0.1/0.9 on
   a GPP + ASIC architecture.  Neglecting the probabilities the optimal
   mapping implements C and E in hardware (26.7158 mWs weighted energy);
   considering them it implements E and F instead (15.7423 mWs), a 41 %
   reduction.

   Example 2 (Fig. 3): resource sharing vs. multiple task
   implementations — re-implementing a shared hardware task in software
   lets a whole ASIC (and the bus) shut down during one mode.

   Run with:  dune exec examples/motivational.exe *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Power = Mm_energy.Power

let pp_int_list ppf ids =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
    Format.pp_print_int ppf ids

(* --- Example 1: mode execution probabilities (Fig. 2) ------------------ *)

(* The Fig. 2 system itself lives in [Mm_benchgen.Motivational] so the
   golden regression tests pin the same specification this example
   demonstrates. *)

let milliwatts w = w *. 1e3

let example1 () =
  Format.printf "=== Example 1 (Fig. 2): mode execution probabilities ===@.";
  let spec = Mm_benchgen.Motivational.spec () in
  let eval arrays =
    Fitness.evaluate_mapping Fitness.default_config spec (Mapping.of_arrays spec arrays)
  in
  (* Fig. 2b: optimal when probabilities are neglected — C and E in HW. *)
  let fig2b = eval [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |] in
  (* Fig. 2c: optimal under the real probabilities — E and F in HW. *)
  let fig2c = eval [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |] in
  Format.printf "Fig.2b mapping (C,E in HW): %.4f mWs weighted (paper: 26.7158)@."
    (milliwatts fig2b.Fitness.true_power);
  Format.printf "Fig.2c mapping (E,F in HW): %.4f mWs weighted (paper: 15.7423)@."
    (milliwatts fig2c.Fitness.true_power);
  Format.printf "reduction: %.2f%% (paper: 41%%)@."
    (Mm_util.Stats.percent_reduction ~from:fig2b.Fitness.true_power
       ~to_:fig2c.Fitness.true_power);
  (* The GA finds both optima depending on the weighting. *)
  let synthesise weighting =
    let config =
      { Synthesis.default_config with fitness = { Fitness.default_config with weighting } }
    in
    Synthesis.run ~config ~spec ~seed:7 ()
  in
  let baseline = synthesise Fitness.Uniform in
  let proposed = synthesise Fitness.True_probabilities in
  Format.printf "GA, probabilities neglected:  %.4f mWs@."
    (milliwatts (Synthesis.average_power baseline));
  Format.printf "GA, probabilities considered: %.4f mWs@."
    (milliwatts (Synthesis.average_power proposed));
  (* Component shut-down: under mapping 2c, mode O1 uses only PE0. *)
  Format.printf "mode O1 under Fig.2c shuts down PEs: %a@." pp_int_list
    fig2c.Fitness.mode_powers.(0).Power.shut_down_pes

(* --- Example 2: multiple task implementations (Fig. 3) ----------------- *)

let example2 () =
  Format.printf "@.=== Example 2 (Fig. 3): multiple task implementations ===@.";
  (* Two modes sharing type A.  The ASIC and bus carry sizeable static
     power, so shutting them down during the dominant mode outweighs the
     software re-implementation's extra dynamic energy. *)
  let ty_a = Task_type.make ~id:0 ~name:"A" in
  let ty_b = Task_type.make ~id:1 ~name:"B" in
  let gpp = Pe.make ~id:0 ~name:"PE0" ~kind:Pe.Gpp ~static_power:2e-3 () in
  let asic =
    Pe.make ~id:1 ~name:"PE1" ~kind:Pe.Asic ~static_power:20e-3 ~area_capacity:600.0 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"CL0" ~connects:[ 0; 1 ] ~time_per_data:1e-6 ~transfer_power:0.0
      ~static_power:5e-3
  in
  let arch = Arch.make ~name:"fig3" ~pes:[ gpp; asic ] ~cls:[ bus ] in
  let tech =
    let ( |+ ) tech (ty, pe, impl) = Tech_lib.add tech ~ty ~pe impl in
    Tech_lib.empty
    |+ (ty_a, gpp, Tech_lib.impl ~exec_time:20e-3 ~dyn_power:0.5 ())
    |+ (ty_a, asic, Tech_lib.impl ~exec_time:2e-3 ~dyn_power:5e-3 ~area:240.0 ())
    |+ (ty_b, gpp, Tech_lib.impl ~exec_time:10e-3 ~dyn_power:0.4 ())
  in
  let graph ~name tys =
    let tasks =
      Array.of_list
        (List.mapi (fun id ty -> Task.make ~id ~name:(Printf.sprintf "t%d" id) ~ty ()) tys)
    in
    let edges =
      List.init (Array.length tasks - 1) (fun i ->
          { Graph.src = i; dst = i + 1; data = 0.0 })
    in
    Graph.make ~name ~tasks ~edges
  in
  let mode1 =
    Mode.make ~id:0 ~name:"O1" ~graph:(graph ~name:"O1" [ ty_a; ty_b ]) ~period:1.0
      ~probability:0.3
  in
  let mode2 =
    Mode.make ~id:1 ~name:"O2" ~graph:(graph ~name:"O2" [ ty_a; ty_b ]) ~period:1.0
      ~probability:0.7
  in
  let omsm =
    Omsm.make ~name:"fig3" ~modes:[ mode1; mode2 ]
      ~transitions:
        [ Transition.make ~src:0 ~dst:1 ~max_time:1.0;
          Transition.make ~src:1 ~dst:0 ~max_time:1.0 ]
  in
  let spec = Spec.make ~omsm ~arch ~tech in
  let eval arrays =
    Fitness.evaluate_mapping Fitness.default_config spec (Mapping.of_arrays spec arrays)
  in
  (* Fig. 3b: both type-A tasks share the ASIC core — the ASIC is active
     in both modes. *)
  let shared = eval [| [| 1; 0 |]; [| 1; 0 |] |] in
  (* Fig. 3c: τ4 re-implemented in software — the ASIC and the bus shut
     down during mode O2. *)
  let duplicated = eval [| [| 1; 0 |]; [| 0; 0 |] |] in
  Format.printf "shared core (Fig.3b):     %.4f mW, O2 shuts down PEs: %a@."
    (milliwatts shared.Fitness.true_power)
    pp_int_list shared.Fitness.mode_powers.(1).Power.shut_down_pes;
  Format.printf "duplicated impl (Fig.3c): %.4f mW, O2 shuts down PEs: %a@."
    (milliwatts duplicated.Fitness.true_power)
    pp_int_list duplicated.Fitness.mode_powers.(1).Power.shut_down_pes

let () =
  example1 ();
  example2 ()
