(* Quickstart: build a two-mode system by hand, synthesise it twice —
   neglecting and considering mode execution probabilities — and compare
   the resulting average power (the paper's §2.3 scenario, end to end).

   Run with:  dune exec examples/quickstart.exe *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Report = Mm_cosynth.Report

(* Six task types; every type runs on the GPP, four have ASIC cores. *)
let types =
  Array.init 6 (fun id ->
      Task_type.make ~id ~name:(String.make 1 (Char.chr (Char.code 'A' + id))))

let graph_of_chain ~name ~type_ids =
  let tasks =
    Array.of_list
      (List.mapi
         (fun id ty_id ->
           Task.make ~id ~name:(Printf.sprintf "%s%d" name id) ~ty:types.(ty_id) ())
         type_ids)
  in
  let edges =
    List.init (Array.length tasks - 1) (fun i -> { Graph.src = i; dst = i + 1; data = 2.0 })
  in
  Graph.make ~name ~tasks ~edges

let architecture () =
  let rail = Voltage.make ~levels:[ 3.3; 2.5; 1.8 ] ~threshold:0.4 in
  let gpp = Pe.make ~id:0 ~name:"GPP" ~kind:Pe.Gpp ~static_power:3e-4 ~rail () in
  let asic =
    Pe.make ~id:1 ~name:"ASIC" ~kind:Pe.Asic ~static_power:1e-4 ~area_capacity:600.0 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"BUS" ~connects:[ 0; 1 ] ~time_per_data:2e-4 ~transfer_power:0.04
      ~static_power:4e-5
  in
  Arch.make ~name:"quickstart" ~pes:[ gpp; asic ] ~cls:[ bus ]

let technology arch =
  (* Five of six types have ASIC cores (250 cells each) but only two fit
     into the 600-cell ASIC: the synthesis must choose which modes' tasks
     deserve the hardware — the choice the mode probabilities inform. *)
  let sw_profiles = [| (8e-3, 0.4); (6e-3, 0.35); (9e-3, 0.45); (5e-3, 0.3); (7e-3, 0.38); (6e-3, 0.33) |] in
  let hw_capable = [| true; true; true; true; true; false |] in
  let add tech ty_id =
    let time, power = sw_profiles.(ty_id) in
    let tech =
      Tech_lib.add tech ~ty:types.(ty_id) ~pe:(Arch.pe arch 0)
        (Tech_lib.impl ~exec_time:time ~dyn_power:power ())
    in
    if hw_capable.(ty_id) then
      Tech_lib.add tech ~ty:types.(ty_id) ~pe:(Arch.pe arch 1)
        (Tech_lib.impl ~exec_time:(time /. 20.0) ~dyn_power:(power /. 50.0) ~area:250.0 ())
    else tech
  in
  List.fold_left add Tech_lib.empty [ 0; 1; 2; 3; 4; 5 ]

let () =
  let arch = architecture () in
  let tech = technology arch in
  (* Rare mode 0 (10 %) vs dominant mode 1 (90 %), as in Fig. 2. *)
  let mode0 =
    Mode.make ~id:0 ~name:"rare"
      ~graph:(graph_of_chain ~name:"rare" ~type_ids:[ 0; 1; 2 ])
      ~period:0.040 ~probability:0.1
  in
  let mode1 =
    Mode.make ~id:1 ~name:"dominant"
      ~graph:(graph_of_chain ~name:"dominant" ~type_ids:[ 3; 4; 5 ])
      ~period:0.030 ~probability:0.9
  in
  let transitions =
    [ Transition.make ~src:0 ~dst:1 ~max_time:0.02;
      Transition.make ~src:1 ~dst:0 ~max_time:0.02 ]
  in
  let omsm = Omsm.make ~name:"quickstart" ~modes:[ mode0; mode1 ] ~transitions in
  let spec = Spec.make ~omsm ~arch ~tech in
  let synthesise weighting =
    let config =
      {
        Synthesis.default_config with
        fitness = { Fitness.default_config with weighting; dvs = Fitness.Dvs Mm_dvs.Scaling.default_config };
      }
    in
    Synthesis.run ~config ~spec ~seed:42 ()
  in
  let baseline = synthesise Fitness.Uniform in
  let proposed = synthesise Fitness.True_probabilities in
  Format.printf "=== baseline (probabilities neglected) ===@.";
  Report.print_result spec baseline;
  Format.printf "@.=== proposed (probabilities considered) ===@.";
  Report.print_result spec proposed;
  let from = Synthesis.average_power baseline in
  let to_ = Synthesis.average_power proposed in
  Format.printf "@.power %.4g mW -> %.4g mW: %.2f%% reduction@." (from *. 1e3) (to_ *. 1e3)
    (Mm_util.Stats.percent_reduction ~from ~to_)
