(* Benchmark harness: regenerates every table of the paper's evaluation
   section plus the ablation studies DESIGN.md calls out, and runs
   Bechamel micro-benchmarks of the synthesis kernels.

   Usage:
     dune exec bench/main.exe                         # everything
     dune exec bench/main.exe -- table1               # one experiment
     dune exec bench/main.exe -- table2 --runs 5
     dune exec bench/main.exe -- --quick              # smaller GA budget

   Experiments (see DESIGN.md §4 and EXPERIMENTS.md):
     table1   Tab. 1 — probabilities vs baseline, no DVS, mul1..mul12
     table2   Tab. 2 — same with DVS (SW processors and HW rails)
     table3   Tab. 3 — smart phone, w/o and with DVS
     ablation improvement operators / HW-rail DVS / population size
     parallel domain-pool speedup + eval-cache hit rates (BENCH_parallel.json)
     eval     compiled evaluation kernels before/after (BENCH_eval_kernel.json)
     soak     checkpoint/kill/resume recovery overhead (BENCH_soak.json)
     serve    mmsynthd throughput and latency percentiles (BENCH_serve.json)
     fleet    fleet Monte Carlo devices/second + bit-invariance (BENCH_fleet.json)
     kernels  Bechamel timings of the inner kernels *)

module Table = Mm_util.Table
module Stats = Mm_util.Stats
module Prng = Mm_util.Prng
module Engine = Mm_ga.Engine
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
module Core_alloc = Mm_cosynth.Core_alloc
module Random_system = Mm_benchgen.Random_system
module Smartphone = Mm_benchgen.Smartphone
module Scaling = Mm_dvs.Scaling
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode

type options = { runs : int option; quick : bool; gate : bool }

(* Reads a flat one-level JSON object of numeric fields — the committed
   perf thresholds.  Deliberately dumb (line-oriented, no JSON library in
   the dependency cone): each `"key": number` line yields a binding,
   everything else is ignored. *)
let read_flat_json path =
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "gate: cannot read %s: %s\n%!" path msg;
      exit 1
  in
  let bindings = ref [] in
  (try
     while true do
       let line = input_line ic in
       match String.index_opt line ':' with
       | None -> ()
       | Some i ->
         let key = String.trim (String.sub line 0 i) in
         let value =
           String.trim (String.sub line (i + 1) (String.length line - i - 1))
         in
         let key =
           if String.length key >= 2 && key.[0] = '"' then
             String.sub key 1 (String.length key - 2)
           else key
         in
         let value =
           if String.length value > 0 && value.[String.length value - 1] = ',' then
             String.sub value 0 (String.length value - 1)
           else value
         in
         (match float_of_string_opt value with
         | Some v -> bindings := (key, v) :: !bindings
         | None -> ())
     done
   with End_of_file -> ());
  close_in ic;
  !bindings

let ga_config options =
  if options.quick then
    { Engine.default_config with population_size = 24; max_generations = 50 }
  else Engine.default_config

let milliwatt w = w *. 1e3

let power_cell (s : Stats.summary) =
  Printf.sprintf "%.3f ±%.2f" (milliwatt s.Stats.mean) (milliwatt s.Stats.std)

let cpu_cell (s : Stats.summary) = Printf.sprintf "%.1f" s.Stats.mean

let comparison_row label (c : Experiment.comparison) =
  [
    label;
    power_cell c.Experiment.without_probabilities.Experiment.power;
    cpu_cell c.Experiment.without_probabilities.Experiment.cpu_seconds;
    power_cell c.Experiment.with_probabilities.Experiment.power;
    cpu_cell c.Experiment.with_probabilities.Experiment.cpu_seconds;
    Table.cell_percent c.Experiment.reduction_percent;
  ]

let comparison_columns =
  [
    "Example (modes)";
    "w/o prob. p̄ (mW)";
    "CPU (s)";
    "with prob. p̄ (mW)";
    "CPU (s)";
    "Reduc. (%)";
  ]

let mul_comparisons ~options ~dvs ~runs_default =
  let runs = Option.value ~default:runs_default options.runs in
  let ga = ga_config options in
  List.init 12 (fun k ->
      let i = k + 1 in
      let spec = Random_system.mul i in
      let label = Printf.sprintf "mul%d (%d)" i (Random_system.mul_mode_count i) in
      let comparison = Experiment.compare ~ga ~dvs ~spec ~runs ~seed:(1000 * i) () in
      Format.printf "  %s done@?@." label;
      (label, comparison))

let print_reduction_summary comparisons =
  let reductions = List.map (fun (_, c) -> c.Experiment.reduction_percent) comparisons in
  let s = Stats.summarize reductions in
  Format.printf "reduction over %d benchmarks: mean %.2f%%, min %.2f%%, max %.2f%%@.@."
    s.Stats.n s.Stats.mean s.Stats.min s.Stats.max

let table1 options =
  Format.printf "@.== Table 1: considering execution probabilities (w/o DVS) ==@.";
  let comparisons = mul_comparisons ~options ~dvs:Fitness.No_dvs ~runs_default:5 in
  let t = Table.create ~title:"Table 1 (paper: reductions 4.17-62.18 %)" ~columns:comparison_columns in
  List.iter (fun (label, c) -> Table.add_row t (comparison_row label c)) comparisons;
  Table.print t;
  print_reduction_summary comparisons

let table2 options =
  Format.printf "@.== Table 2: execution probabilities together with DVS ==@.";
  let dvs = Fitness.Dvs Scaling.default_config in
  let comparisons = mul_comparisons ~options ~dvs ~runs_default:3 in
  let t = Table.create ~title:"Table 2 (paper: reductions 5.68-64.02 %)" ~columns:comparison_columns in
  List.iter (fun (label, c) -> Table.add_row t (comparison_row label c)) comparisons;
  Table.print t;
  print_reduction_summary comparisons

let table3 options =
  Format.printf "@.== Table 3: smart phone real-life example ==@.";
  let runs = Option.value ~default:3 options.runs in
  (* The smart phone's 162-position genome needs a larger GA than the mul
     benchmarks to converge reliably. *)
  let ga =
    if options.quick then ga_config options
    else
      {
        Engine.default_config with
        population_size = 60;
        max_generations = 250;
        stagnation_limit = 40;
        tournament_size = 3;
      }
  in
  let spec = Smartphone.spec () in
  let no_dvs = Experiment.compare ~ga ~dvs:Fitness.No_dvs ~spec ~runs ~seed:42 () in
  Format.printf "  w/o DVS done@?@.";
  let with_dvs =
    Experiment.compare ~ga ~dvs:(Fitness.Dvs Scaling.default_config) ~spec ~runs ~seed:42 ()
  in
  Format.printf "  with DVS done@?@.";
  let t =
    Table.create ~title:"Table 3 (paper: 30.76 % w/o DVS, 29.41 % with DVS, ~67 % overall)"
      ~columns:
        ("Smart phone"
        :: List.tl comparison_columns)
  in
  Table.add_row t (comparison_row "w/o DVS" no_dvs);
  Table.add_row t (comparison_row "with DVS" with_dvs);
  Table.print t;
  let overall =
    Stats.percent_reduction
      ~from:no_dvs.Experiment.without_probabilities.Experiment.power.Stats.mean
      ~to_:with_dvs.Experiment.with_probabilities.Experiment.power.Stats.mean
  in
  Format.printf "overall reduction (w/o DVS baseline -> DVS+probabilities): %.2f%% (paper: ~67%%)@.@."
    overall

(* --- Ablations ------------------------------------------------------------ *)

let proposed_power ~ga ~dvs ~use_improvements ~spec ~seeds =
  let config =
    {
      Synthesis.fitness =
        { Fitness.default_config with weighting = Fitness.True_probabilities; dvs };
      ga;
      use_improvements;
      restarts = Synthesis.default_config.Synthesis.restarts;
      jobs = Synthesis.default_config.Synthesis.jobs;
      eval_cache = Synthesis.default_config.Synthesis.eval_cache;
      delta = Synthesis.default_config.Synthesis.delta;
      audit = false;
      islands = Synthesis.default_config.Synthesis.islands;
      migration_interval = Synthesis.default_config.Synthesis.migration_interval;
      migration_count = Synthesis.default_config.Synthesis.migration_count;
      robust = Synthesis.default_config.Synthesis.robust;
    }
  in
  let powers =
    List.map (fun seed -> Synthesis.average_power (Synthesis.run ~config ~spec ~seed ()))
      seeds
  in
  Stats.summarize powers

let ablation_improvements options =
  Format.printf "@.-- Ablation A: the four improvement operators (§4.1) --@.";
  let ga = ga_config options in
  let seeds = [ 1; 2; 3 ] in
  let t =
    Table.create ~title:"GA with vs without improvement operators (proposed arm, no DVS)"
      ~columns:[ "Benchmark"; "with ops p̄ (mW)"; "without ops p̄ (mW)"; "penalty (%)" ]
  in
  List.iter
    (fun i ->
      let spec = Random_system.mul i in
      let with_ops = proposed_power ~ga ~dvs:Fitness.No_dvs ~use_improvements:true ~spec ~seeds in
      let without_ops =
        proposed_power ~ga ~dvs:Fitness.No_dvs ~use_improvements:false ~spec ~seeds
      in
      Table.add_row t
        [
          Printf.sprintf "mul%d" i;
          power_cell with_ops;
          power_cell without_ops;
          Table.cell_percent
            (Stats.percent_reduction ~from:without_ops.Stats.mean ~to_:with_ops.Stats.mean);
        ])
    [ 1; 2; 6 ];
  Table.print t

let ablation_hw_rail options =
  Format.printf "@.-- Ablation B: DVS on hardware rails (Fig. 5 transform, §4.2) --@.";
  let ga = ga_config options in
  let seeds = [ 1; 2; 3 ] in
  let t =
    Table.create ~title:"Proposed arm under different DVS scopes"
      ~columns:[ "Benchmark"; "no DVS (mW)"; "SW-only DVS (mW)"; "SW+HW DVS (mW)" ]
  in
  let specs = [ ("mul2", Random_system.mul 2); ("mul7", Random_system.mul 7) ] in
  List.iter
    (fun (label, spec) ->
      let none = proposed_power ~ga ~dvs:Fitness.No_dvs ~use_improvements:true ~spec ~seeds in
      let sw_only =
        proposed_power ~ga
          ~dvs:(Fitness.Dvs { Scaling.default_config with Scaling.scale_hardware = false })
          ~use_improvements:true ~spec ~seeds
      in
      let both =
        proposed_power ~ga ~dvs:(Fitness.Dvs Scaling.default_config) ~use_improvements:true
          ~spec ~seeds
      in
      Table.add_row t [ label; power_cell none; power_cell sw_only; power_cell both ])
    specs;
  Table.print t

let ablation_population options =
  Format.printf "@.-- Ablation C: GA population size --@.";
  let seeds = [ 1; 2 ] in
  let spec = Random_system.mul 1 in
  let t =
    Table.create ~title:"mul1, proposed arm, no DVS"
      ~columns:[ "population"; "p̄ (mW)"; "note" ]
  in
  List.iter
    (fun population_size ->
      let ga = { (ga_config options) with Engine.population_size } in
      let s = proposed_power ~ga ~dvs:Fitness.No_dvs ~use_improvements:true ~spec ~seeds in
      Table.add_row t
        [ string_of_int population_size; power_cell s;
          (if population_size = (ga_config options).Engine.population_size then "default" else "") ])
    [ 16; 40; 80 ];
  Table.print t

let ablation_ga_vs_sa options =
  Format.printf "@.-- Ablation D: GA vs simulated-annealing baseline mapper --@.";
  let ga = ga_config options in
  let seeds = [ 1; 2; 3 ] in
  (* Match the optimisation budgets: the GA sees roughly population ×
     generations × restarts evaluations per run. *)
  let sa_steps =
    ga.Engine.population_size * ga.Engine.max_generations
    * Synthesis.default_config.Synthesis.restarts
  in
  let t =
    Table.create
      ~title:(Printf.sprintf "proposed arm, no DVS; SA budget %d evaluations" sa_steps)
      ~columns:[ "Benchmark"; "GA p̄ (mW)"; "SA p̄ (mW)"; "GA advantage (%)" ]
  in
  List.iter
    (fun i ->
      let spec = Random_system.mul i in
      let ga_power = proposed_power ~ga ~dvs:Fitness.No_dvs ~use_improvements:true ~spec ~seeds in
      let sa_powers =
        List.map
          (fun seed ->
            let result =
              Mm_cosynth.Annealing.run
                ~config:{ Mm_cosynth.Annealing.default_config with Mm_cosynth.Annealing.steps = sa_steps }
                ~spec ~seed ()
            in
            result.Mm_cosynth.Annealing.eval.Fitness.true_power)
          seeds
      in
      let sa_power = Stats.summarize sa_powers in
      Table.add_row t
        [
          Printf.sprintf "mul%d" i;
          power_cell ga_power;
          power_cell sa_power;
          Table.cell_percent
            (Stats.percent_reduction ~from:sa_power.Stats.mean ~to_:ga_power.Stats.mean);
        ])
    [ 1; 2; 6 ];
  Table.print t

let ablation_scheduler_policy options =
  Format.printf "@.-- Ablation E: inner-loop scheduler policy --@.";
  (* Both experiment arms share the inner loop, so the baseline-vs-
     proposed comparison should survive any reasonable policy (the
     substitution argument of DESIGN.md §3). *)
  let ga = ga_config options in
  let t =
    Table.create ~title:"mul2 comparison under different list-scheduler priorities"
      ~columns:[ "policy"; "w/o prob. (mW)"; "with prob. (mW)"; "Reduc. (%)" ]
  in
  List.iter
    (fun (name, scheduler_policy) ->
      let spec = Random_system.mul 2 in
      let arm weighting =
        let config =
          {
            Synthesis.fitness = { Fitness.default_config with weighting; scheduler_policy };
            ga;
            use_improvements = true;
            restarts = Synthesis.default_config.Synthesis.restarts;
            jobs = Synthesis.default_config.Synthesis.jobs;
            eval_cache = Synthesis.default_config.Synthesis.eval_cache;
            delta = Synthesis.default_config.Synthesis.delta;
            audit = false;
            islands = Synthesis.default_config.Synthesis.islands;
            migration_interval = Synthesis.default_config.Synthesis.migration_interval;
            migration_count = Synthesis.default_config.Synthesis.migration_count;
            robust = Synthesis.default_config.Synthesis.robust;
          }
        in
        let powers =
          List.map
            (fun seed -> Synthesis.average_power (Synthesis.run ~config ~spec ~seed ()))
            [ 1; 2; 3 ]
        in
        Stats.summarize powers
      in
      let base = arm Fitness.Uniform in
      let prop = arm Fitness.True_probabilities in
      Table.add_row t
        [
          name;
          power_cell base;
          power_cell prop;
          Table.cell_percent (Stats.percent_reduction ~from:base.Stats.mean ~to_:prop.Stats.mean);
        ])
    [
      ("mobility", Mm_sched.List_scheduler.Mobility_first);
      ("critical-path", Mm_sched.List_scheduler.Critical_path_first);
      ("topological", Mm_sched.List_scheduler.Topological);
    ];
  Table.print t

let ablation_dvs_strategy _options =
  Format.printf "@.-- Ablation F: DVS slack-distribution strategy --@.";
  (* Fixed mapping (the greedy anchor) so this isolates the voltage
     scaler: per-unit greedy gradient (PV-DVS style) vs the uniform EVEN
     baseline it was measured against. *)
  let t =
    Table.create ~title:"dynamic energy of the anchor mapping under each scaler"
      ~columns:[ "Benchmark"; "no DVS p̄ (mW)"; "EVEN p̄ (mW)"; "greedy p̄ (mW)" ]
  in
  List.iter
    (fun i ->
      let spec = Random_system.mul i in
      match Synthesis.greedy_timing_anchor spec with
      | None -> ()
      | Some genome ->
        let power dvs =
          (Fitness.evaluate { Fitness.default_config with Fitness.dvs } spec genome)
            .Fitness.true_power
        in
        let nominal = power Fitness.No_dvs in
        let even =
          power (Fitness.Dvs { Scaling.default_config with Scaling.strategy = Scaling.Even_slack })
        in
        let greedy = power (Fitness.Dvs Scaling.default_config) in
        Table.add_row t
          [
            Printf.sprintf "mul%d" i;
            Printf.sprintf "%.3f" (milliwatt nominal);
            Printf.sprintf "%.3f" (milliwatt even);
            Printf.sprintf "%.3f" (milliwatt greedy);
          ])
    [ 1; 2; 3; 7; 12 ];
  Table.print t

let ablation options =
  ablation_improvements options;
  ablation_hw_rail options;
  ablation_population options;
  ablation_ga_vs_sa options;
  ablation_scheduler_policy options;
  ablation_dvs_strategy options

(* --- Parallel evaluation ------------------------------------------------------ *)

(* Wall-clock speedup of the domain-pooled fitness evaluation at 1/2/4/8
   domains on a mul-scale workload, plus the memoization cache's hit
   rate over the table1 benchmarks.  Written to BENCH_parallel.json so
   later PRs have a perf trajectory to compare against. *)

let parallel options =
  Format.printf "@.== Parallel fitness evaluation: domains and memoization ==@.";
  let ga = ga_config options in
  let seed = 1 in
  let wall_of config spec =
    let started = Unix.gettimeofday () in
    let result = Synthesis.run ~config ~spec ~seed () in
    (Unix.gettimeofday () -. started, result)
  in
  (* Speedup vs domains, cache off, so the pool is measured in isolation.
     Metrics collection is on for these runs: the per-phase histograms
     break the wall-clock figure down into fitness-pipeline phases, and
     the pool counters report how much of the domains' time was spent
     working vs parked. *)
  let spec = Random_system.mul 6 in
  let domain_counts = [ 1; 2; 4; 8 ] in
  let cores = Domain.recommended_domain_count () in
  (* Honesty: oversubscribed rows time contention, not parallelism. *)
  let degraded jobs = jobs > cores in
  List.iter
    (fun jobs ->
      if degraded jobs then
        Printf.eprintf
          "WARNING: measuring %d domains on %d available core(s) - the speedup \
           figure is degraded by oversubscription\n\
           %!"
          jobs cores)
    domain_counts;
  let phase_sample () =
    let snap = Mm_obs.Metrics.snapshot () in
    let hist name =
      match List.assoc_opt name snap.Mm_obs.Metrics.histograms with
      | Some h -> h.Mm_obs.Metrics.sum /. 1e6
      | None -> 0.0
    in
    let counter_s name =
      match List.assoc_opt name snap.Mm_obs.Metrics.counters with
      | Some n -> float_of_int n /. 1e6
      | None -> 0.0
    in
    ( hist "fitness/eval_us",
      hist "fitness/schedule_us",
      hist "fitness/dvs_us",
      counter_s "pool/busy_us",
      (* The old conflated pool/wait_us is gone: queue-wait is dispatch
         cost (workers parked between batches), barrier-wait is
         imbalance (the owner idle at the batch barrier). *)
      counter_s "pool/queue_wait_us",
      counter_s "pool/barrier_wait_us" )
  in
  Mm_obs.Control.set_metrics true;
  let timings =
    List.map
      (fun jobs ->
        let config = { Synthesis.default_config with ga; jobs; eval_cache = 0 } in
        Mm_obs.Metrics.reset ();
        let seconds, result = wall_of config spec in
        let phases = phase_sample () in
        Format.printf "  %d domain%s done@?@." jobs (if jobs = 1 then "" else "s");
        (jobs, seconds, result, phases))
      domain_counts
  in
  Mm_obs.Control.set_metrics false;
  let _, serial_seconds, serial_result, _ = List.hd timings in
  List.iter
    (fun (jobs, _, (result : Synthesis.result), _) ->
      if result.Synthesis.eval.Fitness.true_power
         <> serial_result.Synthesis.eval.Fitness.true_power
      then
        Format.printf
          "  WARNING: %d-domain run diverged from the serial result (determinism bug)@."
          jobs)
    timings;
  let t =
    Table.create
      ~title:
        (Printf.sprintf "mul6, seed %d, cache off, %d CPU core(s) available" seed
           (Domain.recommended_domain_count ()))
      ~columns:
        [
          "domains"; "wall (s)"; "speedup"; "p̄ (mW)"; "eval (s)"; "sched (s)";
          "dvs (s)"; "pool util"; "q-wait (s)"; "b-wait (s)";
        ]
  in
  List.iter
    (fun ( jobs,
           seconds,
           (result : Synthesis.result),
           (eval_s, sched_s, dvs_s, busy_s, queue_s, barrier_s) ) ->
      Table.add_row t
        [
          string_of_int jobs;
          Printf.sprintf "%.2f" seconds;
          Printf.sprintf "%.2fx%s"
            (serial_seconds /. seconds)
            (if degraded jobs then " (degraded)" else "");
          Printf.sprintf "%.3f" (milliwatt result.Synthesis.eval.Fitness.true_power);
          Printf.sprintf "%.2f" eval_s;
          Printf.sprintf "%.2f" sched_s;
          Printf.sprintf "%.2f" dvs_s;
          (* Fraction of the pool domains' lifetime spent running jobs;
             the pool only exists with two or more domains. *)
          (if jobs > 1 then
             Printf.sprintf "%.0f%%" (100.0 *. busy_s /. (float_of_int jobs *. seconds))
           else "-");
          (if jobs > 1 then Printf.sprintf "%.2f" queue_s else "-");
          (if jobs > 1 then Printf.sprintf "%.2f" barrier_s else "-");
        ])
    timings;
  Table.print t;
  (* Island-model grid: the same workload with the population sharded
     across islands, pool domains scheduling whole islands instead of
     evaluation batches.  The (jobs=1, islands=1) row is the baseline;
     islands > jobs is legal (round-robin), only jobs > cores is
     degraded.  Unlike --jobs, islands change the trajectory, so powers
     differ between island counts — each row prints its own. *)
  let island_grid =
    List.concat_map
      (fun jobs -> List.map (fun islands -> (jobs, islands)) [ 1; 2; 4 ])
      [ 1; 2; 4 ]
  in
  let island_rows =
    List.map
      (fun (jobs, islands) ->
        let config =
          { Synthesis.default_config with ga; jobs; islands; eval_cache = 0 }
        in
        let seconds, result = wall_of config spec in
        Format.printf "  %d job%s x %d island%s done@?@." jobs
          (if jobs = 1 then "" else "s")
          islands
          (if islands = 1 then "" else "s");
        (jobs, islands, seconds, result))
      island_grid
  in
  let island_base =
    let _, _, s, _ =
      List.find (fun (j, i, _, _) -> j = 1 && i = 1) island_rows
    in
    s
  in
  let it =
    Table.create
      ~title:
        (Printf.sprintf "island-model GA on mul6, seed %d, %d CPU core(s) available"
           seed cores)
      ~columns:[ "jobs"; "islands"; "wall (s)"; "speedup"; "p̄ (mW)"; "generations" ]
  in
  List.iter
    (fun (jobs, islands, seconds, (result : Synthesis.result)) ->
      Table.add_row it
        [
          string_of_int jobs;
          string_of_int islands;
          Printf.sprintf "%.2f" seconds;
          Printf.sprintf "%.2fx%s" (island_base /. seconds)
            (if degraded jobs then " (degraded)" else "");
          Printf.sprintf "%.3f" (milliwatt result.Synthesis.eval.Fitness.true_power);
          string_of_int result.Synthesis.generations;
        ])
    island_rows;
  Table.print it;
  (* The parallel gate's verdict, computed here so the JSON records it
     whether or not --gate is enforcing: on a multi-core machine the
     best non-degraded islands>=2 run with jobs>=2 must not lose wall
     time to the single-population (jobs=1, islands=1) run.  On a
     1-core runner the wall-clock assertion is meaningless, so the gate
     is skipped with the reason recorded. *)
  let island_candidates =
    List.filter
      (fun (j, i, _, _) -> i >= 2 && j >= 2 && not (degraded j))
      island_rows
  in
  let best_island_wall =
    List.fold_left (fun acc (_, _, s, _) -> min acc s) infinity island_candidates
  in
  let gate_skipped = cores <= 1 || island_candidates = [] in
  let gate_reason =
    if cores <= 1 then Printf.sprintf "cpu_cores = %d, wall-clock assertion" cores
    else if island_candidates = [] then "no non-degraded islands>=2 row"
    else ""
  in
  let cache_rows =
    List.map
      (fun i ->
        let spec = Random_system.mul i in
        let config = { Synthesis.default_config with ga; jobs = 1 } in
        let seconds, result = wall_of config spec in
        let nocache =
          { Synthesis.default_config with ga; jobs = 1; eval_cache = 0 }
        in
        let nocache_seconds, _ = wall_of nocache spec in
        let hits = result.Synthesis.cache_hits in
        let total = hits + result.Synthesis.evaluations in
        let rate = if total = 0 then 0.0 else float_of_int hits /. float_of_int total in
        (Printf.sprintf "mul%d" i, hits, result.Synthesis.evaluations, rate, seconds,
         nocache_seconds))
      (List.init 12 (fun k -> k + 1))
  in
  let ct =
    Table.create ~title:"evaluation cache on table1 workloads (serial)"
      ~columns:
        [ "Benchmark"; "hits"; "evaluations"; "hit rate"; "cached (s)"; "uncached (s)" ]
  in
  List.iter
    (fun (label, hits, evals, rate, seconds, nocache_seconds) ->
      Table.add_row ct
        [
          label;
          string_of_int hits;
          string_of_int evals;
          Printf.sprintf "%.1f%%" (100.0 *. rate);
          Printf.sprintf "%.2f" seconds;
          Printf.sprintf "%.2f" nocache_seconds;
        ])
    cache_rows;
  Table.print ct;
  (* Machine-readable baseline. *)
  let path = "BENCH_parallel.json" in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"parallel\",\n";
  p "  \"workload\": \"mul6\",\n";
  p "  \"seed\": %d,\n" seed;
  p "  \"quick\": %b,\n" options.quick;
  p "  \"cpu_cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"domains\": [\n";
  List.iteri
    (fun i (jobs, seconds, _, (eval_s, sched_s, dvs_s, busy_s, queue_s, barrier_s)) ->
      p
        "    { \"jobs\": %d, \"degraded\": %b, \"wall_seconds\": %.3f, \
         \"speedup\": %.3f, \"eval_seconds\": %.3f, \"sched_seconds\": %.3f, \
         \"dvs_seconds\": %.3f, \"pool_busy_seconds\": %.3f, \
         \"pool_queue_wait_seconds\": %.3f, \"pool_barrier_wait_seconds\": %.3f }%s\n"
        jobs (degraded jobs) seconds
        (serial_seconds /. seconds)
        eval_s sched_s dvs_s busy_s queue_s barrier_s
        (if i = List.length timings - 1 then "" else ","))
    timings;
  p "  ],\n";
  p "  \"islands\": [\n";
  List.iteri
    (fun i (jobs, islands, seconds, (result : Synthesis.result)) ->
      p
        "    { \"jobs\": %d, \"islands\": %d, \"degraded\": %b, \
         \"wall_seconds\": %.3f, \"speedup\": %.3f, \"power_mw\": %.6f, \
         \"generations\": %d }%s\n"
        jobs islands (degraded jobs) seconds (island_base /. seconds)
        (milliwatt result.Synthesis.eval.Fitness.true_power)
        result.Synthesis.generations
        (if i = List.length island_rows - 1 then "" else ","))
    island_rows;
  p "  ],\n";
  if gate_skipped then
    p "  \"island_gate\": { \"skipped\": true, \"reason\": %S, \"cpu_cores\": %d },\n"
      gate_reason cores
  else
    p
      "  \"island_gate\": { \"skipped\": false, \"cpu_cores\": %d, \
       \"islands1_wall_seconds\": %.3f, \"best_island_wall_seconds\": %.3f },\n"
      cores island_base best_island_wall;
  p "  \"cache\": [\n";
  List.iteri
    (fun i (label, hits, evals, rate, seconds, nocache_seconds) ->
      p
        "    { \"workload\": \"%s\", \"hits\": %d, \"evaluations\": %d, \
         \"hit_rate\": %.4f, \"wall_seconds\": %.3f, \"uncached_wall_seconds\": %.3f \
         }%s\n"
        label hits evals rate seconds nocache_seconds
        (if i = List.length cache_rows - 1 then "" else ","))
    cache_rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path;
  if options.gate then begin
    Format.printf "@.== Parallel gate: islands must make parallelism win ==@.";
    if gate_skipped then
      Format.printf "  gate SKIP islands_speedup (%s)@." gate_reason
    else begin
      (* 5%% measured-noise slack: the requirement is "not slower", the
         slack keeps a same-speed run from flaking the build. *)
      let ceiling = island_base *. 1.05 in
      if best_island_wall <= ceiling then
        Format.printf "  gate ok   islands_speedup %26.3fs <= %.3fs@."
          best_island_wall ceiling
      else begin
        Format.printf "  gate FAIL islands_speedup %26.3fs >  %.3fs@."
          best_island_wall ceiling;
        Printf.eprintf
          "gate: islands >= 2 lost wall-clock time to a single population\n%!";
        exit 1
      end;
      Format.printf "gate: all checks passed@."
    end
  end

(* --- Soak: checkpoint, kill, resume ------------------------------------------- *)

(* Cost of fault tolerance (DESIGN.md §11): the same synthesis run
   straight through, with a checkpoint written every generation, and
   killed mid-flight then resumed from the last snapshot.  The resumed
   run must reproduce the straight run's result bit-for-bit; the JSON
   baseline records the checkpointing and recovery overheads so later
   PRs notice a regression in either. *)

exception Soak_interrupted

let soak options =
  Format.printf "@.== Soak: checkpoint every generation, kill, resume ==@.";
  let ga =
    { (ga_config options) with Engine.population_size = 24; max_generations = 40 }
  in
  let spec = Random_system.mul 4 in
  let seed = 11 in
  let config = { Synthesis.default_config with ga } in
  let path = Filename.temp_file "mmsyn_soak" ".snap" in
  let wall f =
    let started = Unix.gettimeofday () in
    let result = f () in
    (Unix.gettimeofday () -. started, result)
  in
  let sink = Mm_io.Snapshot.synth_sink ~path ~spec ~every:1 () in
  let straight_seconds, straight = wall (fun () -> Synthesis.run ~config ~spec ~seed ()) in
  (* Same run with a checkpoint after every generation: the steady-state
     cost of being interruptible. *)
  let n_checkpoints = ref 0 in
  let counting =
    { sink with Synthesis.save = (fun st -> sink.Synthesis.save st; incr n_checkpoints) }
  in
  let checkpointed_seconds, checkpointed =
    wall (fun () -> Synthesis.run ~config ~checkpoint:counting ~spec ~seed ())
  in
  let snapshot_bytes = (Unix.stat path).Unix.st_size in
  (* Kill the run halfway through its checkpoints, then resume from the
     file it left behind. *)
  let kill_at = max 1 (!n_checkpoints / 2) in
  let written = ref 0 in
  let killer =
    {
      sink with
      Synthesis.save =
        (fun st ->
          sink.Synthesis.save st;
          incr written;
          if !written >= kill_at then raise Soak_interrupted);
    }
  in
  let interrupted_seconds, () =
    wall (fun () ->
        match Synthesis.run ~config ~checkpoint:killer ~spec ~seed () with
        | _ -> failwith "soak: the run was not interrupted"
        | exception Soak_interrupted -> ())
  in
  let resume =
    match Mm_io.Snapshot.load ~path ~spec with
    | Ok (Mm_io.Snapshot.Synth state) -> state
    | Ok (Mm_io.Snapshot.Compare _) | Error _ ->
      failwith "soak: cannot reload the snapshot the killed run left behind"
  in
  let resume_seconds, resumed =
    wall (fun () -> Synthesis.run ~config ~resume ~spec ~seed ())
  in
  Sys.remove path;
  let bits (r : Synthesis.result) =
    Int64.bits_of_float r.Synthesis.eval.Fitness.true_power
  in
  let identical =
    bits resumed = bits straight
    && resumed.Synthesis.genome = straight.Synthesis.genome
    && bits checkpointed = bits straight
  in
  if not identical then
    Format.printf
      "  WARNING: checkpointed or resumed run diverged from the straight run \
       (determinism bug)@.";
  let percent_over base v = 100.0 *. (v -. base) /. base in
  let checkpoint_overhead = percent_over straight_seconds checkpointed_seconds in
  let recovery_overhead =
    percent_over straight_seconds (interrupted_seconds +. resume_seconds)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "mul4, seed %d, %d checkpoints of %d bytes, killed after %d"
           seed !n_checkpoints snapshot_bytes kill_at)
      ~columns:[ "run"; "wall (s)"; "p̄ (mW)"; "bit-identical" ]
  in
  let row label seconds power_cell identical_cell =
    Table.add_row t [ label; Printf.sprintf "%.2f" seconds; power_cell; identical_cell ]
  in
  let power (r : Synthesis.result) =
    Printf.sprintf "%.4f" (milliwatt r.Synthesis.eval.Fitness.true_power)
  in
  row "straight (no checkpoints)" straight_seconds (power straight) "-";
  row "checkpoint every generation" checkpointed_seconds (power checkpointed)
    (string_of_bool (bits checkpointed = bits straight));
  row "interrupted (killed mid-run)" interrupted_seconds "-" "-";
  row "resumed from snapshot" resume_seconds (power resumed)
    (string_of_bool (bits resumed = bits straight));
  Table.print t;
  Format.printf "checkpointing overhead: %.1f%%, interrupt+resume vs straight: %+.1f%%@."
    checkpoint_overhead recovery_overhead;
  let json_path = "BENCH_soak.json" in
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"soak\",\n";
  p "  \"workload\": \"mul4\",\n";
  p "  \"seed\": %d,\n" seed;
  p "  \"quick\": %b,\n" options.quick;
  p "  \"checkpoints\": %d,\n" !n_checkpoints;
  p "  \"killed_after_checkpoint\": %d,\n" kill_at;
  p "  \"snapshot_bytes\": %d,\n" snapshot_bytes;
  p "  \"straight_wall_seconds\": %.3f,\n" straight_seconds;
  p "  \"checkpointed_wall_seconds\": %.3f,\n" checkpointed_seconds;
  p "  \"interrupted_wall_seconds\": %.3f,\n" interrupted_seconds;
  p "  \"resume_wall_seconds\": %.3f,\n" resume_seconds;
  p "  \"checkpoint_overhead_percent\": %.2f,\n" checkpoint_overhead;
  p "  \"recovery_overhead_percent\": %.2f,\n" recovery_overhead;
  p "  \"bit_identical\": %b\n" identical;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." json_path

(* --- Compiled evaluation kernels ---------------------------------------------- *)

(* Before/after comparison of the compile-once evaluation context
   (DESIGN.md §10): the same stream of genomes — parents plus
   single-gene mutants, mimicking a GA population — evaluated once
   through the seed pipeline ([Fitness.evaluate_reference]) and once
   through the compiled one ([Fitness.evaluate]), with the per-phase
   probe histograms attributing the time.  Written to
   BENCH_eval_kernel.json so later PRs have a perf trajectory. *)

let eval_kernel options =
  Format.printf "@.== Compiled evaluation kernels: before/after ==@.";
  let parents, mutants = if options.quick then (8, 4) else (24, 8) in
  let genome_stream rng spec =
    let counts = Spec.gene_counts spec in
    List.concat_map
      (fun _ ->
        let parent = Mm_ga.Genome.random rng ~counts in
        parent
        :: List.init mutants (fun _ ->
               let child = Array.copy parent in
               let pos = Prng.int rng (Array.length counts) in
               child.(pos) <- Prng.int rng counts.(pos);
               child))
      (List.init parents Fun.id)
  in
  let phases = [ "mobility"; "core_alloc"; "schedule"; "dvs"; "power"; "eval" ] in
  let hist_seconds snap name =
    match List.assoc_opt name snap.Mm_obs.Metrics.histograms with
    | Some h -> h.Mm_obs.Metrics.sum /. 1e6
    | None -> 0.0
  in
  let counter snap name =
    Option.value ~default:0 (List.assoc_opt name snap.Mm_obs.Metrics.counters)
  in
  let gauge snap name =
    Option.value ~default:0.0 (List.assoc_opt name snap.Mm_obs.Metrics.gauges)
  in
  let measure evaluate genomes =
    Mm_obs.Metrics.reset ();
    let started = Unix.gettimeofday () in
    List.iter (fun g -> ignore (evaluate g)) genomes;
    let wall = Unix.gettimeofday () -. started in
    (wall, Mm_obs.Metrics.snapshot ())
  in
  (* DVS on, so the dvs phase is non-trivial in both pipelines. *)
  let config = { Fitness.default_config with Fitness.dvs = Fitness.Dvs Scaling.default_config } in
  Mm_obs.Control.set_metrics true;
  let rows =
    List.map
      (fun (label, spec) ->
        let rng = Prng.create ~seed:7 in
        let genomes = genome_stream rng spec in
        let before_wall, before =
          measure (Fitness.evaluate_reference config spec) genomes
        in
        let after_wall, after = measure (Fitness.evaluate config spec) genomes in
        Format.printf "  %s done (%d evaluations)@?@." label (List.length genomes);
        (label, List.length genomes, before_wall, before, after_wall, after))
      [
        ("smartphone", Smartphone.spec ());
        ("mul6", Random_system.mul 6);
        ("mul12", Random_system.mul 12);
      ]
  in
  let time f =
    let started = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. started
  in
  (* Isolated DVS kernel: the same (graph, schedule) pairs through the
     seed greedy loop and the heap-based one, with a float-bit
     equivalence spot-check before timing anything. *)
  let dvs_kernel_stats (label, spec) =
    let arch = Spec.arch spec and tech = Spec.tech spec in
    let dispatch = Spec.dispatch (Spec.compiled spec) in
    let ws = Scaling.create_workspace () in
    let graphs = List.map Mode.graph (Omsm.modes (Spec.omsm spec)) in
    let rng = Prng.create ~seed:11 in
    let counts = Spec.gene_counts spec in
    let pairs =
      List.concat_map
        (fun _ ->
          let g = Mm_ga.Genome.random rng ~counts in
          let eval = Fitness.evaluate config spec g in
          List.mapi (fun i graph -> (graph, eval.Fitness.schedules.(i))) graphs)
        (List.init (if options.quick then 3 else 6) Fun.id)
    in
    List.iter
      (fun (graph, schedule) ->
        let a = Scaling.run ~workspace:ws ~dispatch ~graph ~arch ~tech ~schedule () in
        let b = Scaling.run_reference ~graph ~arch ~tech ~schedule () in
        if
          Int64.bits_of_float a.Scaling.total_dyn_energy
          <> Int64.bits_of_float b.Scaling.total_dyn_energy
          || a.Scaling.feasible <> b.Scaling.feasible
        then begin
          Printf.eprintf "BUG: heap DVS diverged from the reference on %s\n%!" label;
          exit 1
        end)
      pairs;
    let reps = if options.quick then 60 else 250 in
    let reference_seconds =
      time (fun () ->
          for _ = 1 to reps do
            List.iter
              (fun (graph, schedule) ->
                ignore (Scaling.run_reference ~graph ~arch ~tech ~schedule ()))
              pairs
          done)
    in
    let heap_seconds =
      time (fun () ->
          for _ = 1 to reps do
            List.iter
              (fun (graph, schedule) ->
                ignore (Scaling.run ~workspace:ws ~dispatch ~graph ~arch ~tech ~schedule ()))
              pairs
          done)
    in
    (List.length pairs, reps, reference_seconds, heap_seconds)
  in
  (* Delta evaluation over a mutation stream: parents evaluated in full,
     children through [Fitness.evaluate_delta], float-bit checked against
     the full pipeline.  One untimed warm-up pass keeps the shared
     per-mode caches from favouring whichever side runs second. *)
  let delta_stats (_, spec) =
    let counts = Spec.gene_counts spec in
    let rng = Prng.create ~seed:13 in
    let n_parents, n_children =
      if options.quick then (4, 8) else (12, 24)
    in
    let stream =
      List.init n_parents (fun _ ->
          let parent = Mm_ga.Genome.random rng ~counts in
          let kids =
            List.init n_children (fun _ ->
                let child = Array.copy parent in
                let pos = Prng.int rng (Array.length counts) in
                child.(pos) <- Prng.int rng counts.(pos);
                let dirty = if child.(pos) = parent.(pos) then [] else [ pos ] in
                (child, dirty))
          in
          (parent, kids))
    in
    let full_pass () =
      List.map
        (fun (parent, kids) ->
          ignore (Fitness.evaluate config spec parent);
          List.map
            (fun (child, _) -> (Fitness.evaluate config spec child).Fitness.fitness)
            kids)
        stream
    in
    ignore (full_pass ());
    let full_fitness = ref [] in
    let full_seconds = time (fun () -> full_fitness := full_pass ()) in
    Mm_obs.Metrics.reset ();
    let delta_fitness = ref [] in
    let delta_seconds =
      time (fun () ->
          delta_fitness :=
            List.map
              (fun (parent, kids) ->
                let parent_eval = Fitness.evaluate config spec parent in
                List.map
                  (fun (child, dirty) ->
                    (Fitness.evaluate_delta config spec ~parent:parent_eval ~dirty
                       child)
                      .Fitness.fitness)
                  kids)
              stream)
    in
    let snap = Mm_obs.Metrics.snapshot () in
    List.iter2
      (List.iter2 (fun a b ->
           if Int64.bits_of_float a <> Int64.bits_of_float b then begin
             Printf.eprintf "BUG: delta evaluation diverged from the full pipeline\n%!";
             exit 1
           end))
      !full_fitness !delta_fitness;
    ( n_parents,
      n_children,
      full_seconds,
      delta_seconds,
      counter snap "fitness/delta_evals",
      counter snap "fitness/delta_fallbacks",
      counter snap "fitness/delta_mode_reuse" )
  in
  let extras =
    List.map
      (fun (label, spec) -> (label, dvs_kernel_stats (label, spec), delta_stats (label, spec)))
      [
        ("smartphone", Smartphone.spec ());
        ("mul6", Random_system.mul 6);
        ("mul12", Random_system.mul 12);
      ]
  in
  Mm_obs.Control.set_metrics false;
  let t =
    Table.create ~title:"fitness pipeline, reference vs compiled (wall seconds)"
      ~columns:
        [ "workload"; "phase"; "before (s)"; "after (s)"; "speedup"; "cache" ]
  in
  List.iter
    (fun (label, _, before_wall, before, after_wall, after) ->
      let cache_cell =
        let hits = counter after "fitness/mode_cache_hits" in
        let misses = counter after "fitness/mode_cache_misses" in
        Printf.sprintf "%d/%d hits" hits (hits + misses)
      in
      Table.add_row t
        [
          label; "wall";
          Printf.sprintf "%.3f" before_wall;
          Printf.sprintf "%.3f" after_wall;
          Printf.sprintf "%.2fx" (before_wall /. after_wall);
          cache_cell;
        ];
      List.iter
        (fun phase ->
          let name = Printf.sprintf "fitness/%s_us" phase in
          let b = hist_seconds before name and a = hist_seconds after name in
          if b > 0.0 || a > 0.0 then
            Table.add_row t
              [
                label; phase;
                Printf.sprintf "%.3f" b;
                Printf.sprintf "%.3f" a;
                (if a > 0.0 then Printf.sprintf "%.2fx" (b /. a) else "-");
                "";
              ])
        phases)
    rows;
  Table.print t;
  let kt =
    Table.create ~title:"DVS kernel (heap vs reference) and delta evaluation"
      ~columns:
        [
          "workload"; "dvs ref (s)"; "dvs heap (s)"; "dvs speedup"; "full (s)";
          "delta (s)"; "delta speedup"; "reused modes";
        ]
  in
  List.iter
    (fun (label, (_, _, ref_s, heap_s), (_, _, full_s, delta_s, _, _, reuse)) ->
      Table.add_row kt
        [
          label;
          Printf.sprintf "%.3f" ref_s;
          Printf.sprintf "%.3f" heap_s;
          Printf.sprintf "%.2fx" (ref_s /. heap_s);
          Printf.sprintf "%.3f" full_s;
          Printf.sprintf "%.3f" delta_s;
          Printf.sprintf "%.2fx" (full_s /. delta_s);
          string_of_int reuse;
        ])
    extras;
  Table.print kt;
  let path = "BENCH_eval_kernel.json" in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"eval\",\n";
  p "  \"quick\": %b,\n" options.quick;
  p "  \"cpu_cores\": %d,\n" (Domain.recommended_domain_count ());
  p "  \"workloads\": [\n";
  List.iteri
    (fun i (label, n_evals, before_wall, before, after_wall, after) ->
      let _, (dvs_pairs, dvs_reps, dvs_ref_s, dvs_heap_s), delta =
        List.find (fun (l, _, _) -> l = label) extras
      in
      let d_parents, d_children, d_full_s, d_delta_s, d_evals, d_fallbacks, d_reuse =
        delta
      in
      p "    {\n";
      p "      \"workload\": \"%s\",\n" label;
      p "      \"evaluations\": %d,\n" n_evals;
      p "      \"dvs_kernel\": {\n";
      p "        \"pairs\": %d,\n" dvs_pairs;
      p "        \"reps\": %d,\n" dvs_reps;
      p "        \"reference_seconds\": %.4f,\n" dvs_ref_s;
      p "        \"heap_seconds\": %.4f,\n" dvs_heap_s;
      p "        \"speedup\": %.3f\n" (dvs_ref_s /. dvs_heap_s);
      p "      },\n";
      p "      \"delta\": {\n";
      p "        \"parents\": %d,\n" d_parents;
      p "        \"children_per_parent\": %d,\n" d_children;
      p "        \"full_seconds\": %.4f,\n" d_full_s;
      p "        \"delta_seconds\": %.4f,\n" d_delta_s;
      p "        \"speedup\": %.3f,\n" (d_full_s /. d_delta_s);
      p "        \"delta_evals\": %d,\n" d_evals;
      p "        \"delta_fallbacks\": %d,\n" d_fallbacks;
      p "        \"delta_mode_reuse\": %d\n" d_reuse;
      p "      },\n";
      let side name wall snap =
        p "      \"%s\": {\n" name;
        p "        \"wall_seconds\": %.4f,\n" wall;
        List.iter
          (fun phase ->
            p "        \"%s_seconds\": %.4f,\n" phase
              (hist_seconds snap (Printf.sprintf "fitness/%s_us" phase)))
          phases;
        p "        \"mode_cache_hits\": %d,\n" (counter snap "fitness/mode_cache_hits");
        p "        \"mode_cache_misses\": %d,\n"
          (counter snap "fitness/mode_cache_misses");
        p "        \"mobility_cache_hits\": %d,\n"
          (counter snap "fitness/mobility_cache_hits");
        p "        \"mobility_cache_misses\": %d,\n"
          (counter snap "fitness/mobility_cache_misses");
        p "        \"route_table_pairs\": %.0f,\n" (gauge snap "sched/route_table_pairs");
        p "        \"route_table_entries\": %.0f\n"
          (gauge snap "sched/route_table_entries");
        p "      },\n"
      in
      side "reference" before_wall before;
      side "compiled" after_wall after;
      p "      \"speedup\": {\n";
      p "        \"wall\": %.3f,\n" (before_wall /. after_wall);
      List.iteri
        (fun j phase ->
          let name = Printf.sprintf "fitness/%s_us" phase in
          let b = hist_seconds before name and a = hist_seconds after name in
          p "        \"%s\": %.3f%s\n" phase
            (if a > 0.0 then b /. a else 0.0)
            (if j = List.length phases - 1 then "" else ","))
        phases;
      p "      }\n";
      p "    }%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." path;
  if options.gate then begin
    let thresholds = read_flat_json "BENCH_eval_thresholds.json" in
    let threshold key =
      match List.assoc_opt key thresholds with
      | Some v -> v
      | None ->
        Printf.eprintf "gate: BENCH_eval_thresholds.json is missing %S\n%!" key;
        exit 1
    in
    let tolerance = 1.0 -. (threshold "max_regression_pct" /. 100.0) in
    let cores = Domain.recommended_domain_count () in
    let failures = ref 0 in
    let check ~wall key measured =
      let floor = threshold key *. tolerance in
      if wall && cores <= 1 then
        Format.printf "  gate SKIP %-36s (cpu_cores = 1, wall-clock assertion)@." key
      else if measured >= floor then
        Format.printf "  gate ok   %-36s %8.3f >= %.3f@." key measured floor
      else begin
        Format.printf "  gate FAIL %-36s %8.3f <  %.3f@." key measured floor;
        incr failures
      end
    in
    Format.printf "@.== Perf-regression gate (thresholds x %.2f) ==@." tolerance;
    List.iter
      (fun (label, _, before_wall, _, after_wall, after) ->
        let hits = counter after "fitness/mode_cache_hits" in
        let misses = counter after "fitness/mode_cache_misses" in
        let rate =
          if hits + misses = 0 then 0.0
          else float_of_int hits /. float_of_int (hits + misses)
        in
        let _, (_, _, dvs_ref_s, dvs_heap_s), (_, _, full_s, delta_s, _, _, _) =
          List.find (fun (l, _, _) -> l = label) extras
        in
        check ~wall:true (label ^ "_wall_speedup") (before_wall /. after_wall);
        check ~wall:false (label ^ "_mode_cache_hit_rate") rate;
        check ~wall:true (label ^ "_dvs_kernel_speedup") (dvs_ref_s /. dvs_heap_s);
        check ~wall:true (label ^ "_delta_speedup") (full_s /. delta_s))
      rows;
    if !failures > 0 then begin
      Printf.eprintf "gate: %d perf-regression check(s) failed\n%!" !failures;
      exit 1
    end;
    Format.printf "gate: all checks passed@."
  end

(* --- Bechamel kernels -------------------------------------------------------- *)

let kernels _options =
  Format.printf "@.== Bechamel kernel timings ==@.";
  let open Bechamel in
  let spec = Random_system.mul 1 in
  let rng = Prng.create ~seed:1 in
  let genome = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts spec) in
  let nominal_config = Fitness.default_config in
  let dvs_config = { Fitness.default_config with dvs = Fitness.Dvs Scaling.default_config } in
  let phone = Smartphone.spec () in
  let phone_genome = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts phone) in
  let tests =
    [
      Test.make ~name:"fitness/mul1/no-dvs"
        (Staged.stage (fun () -> ignore (Fitness.evaluate nominal_config spec genome)));
      Test.make ~name:"fitness/mul1/dvs"
        (Staged.stage (fun () -> ignore (Fitness.evaluate dvs_config spec genome)));
      Test.make ~name:"fitness/smartphone/no-dvs"
        (Staged.stage (fun () -> ignore (Fitness.evaluate nominal_config phone phone_genome)));
      Test.make ~name:"fitness/smartphone/dvs"
        (Staged.stage (fun () -> ignore (Fitness.evaluate dvs_config phone phone_genome)));
      Test.make ~name:"benchgen/mul-generate"
        (Staged.stage (fun () -> ignore (Random_system.generate ~seed:3 ())));
    ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let measure = Toolkit.Instance.monotonic_clock in
  let analysis = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let t = Table.create ~title:"kernel execution times" ~columns:[ "kernel"; "time/run"; "r²" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ measure ] elt in
          let ols = Analyze.one analysis measure raw in
          let nanoseconds =
            match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan
          in
          let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
          let time_cell =
            if nanoseconds > 1e6 then Printf.sprintf "%.3f ms" (nanoseconds /. 1e6)
            else Printf.sprintf "%.1f µs" (nanoseconds /. 1e3)
          in
          Table.add_row t [ Test.Elt.name elt; time_cell; Printf.sprintf "%.4f" r2 ])
        (Test.elements test))
    tests;
  Table.print t

(* --- serve: daemon load generator --------------------------------------------- *)

(* Load-tests mmsynthd end to end: an in-process daemon on a Unix-domain
   socket, >= 100 mixed-size submissions (mul1..mul6 round-robin, fresh
   seeds), then every job watched to completion.  Three client-relevant
   latencies come out as p50/p90/p99:

     admission   submit round-trip measured at the client — how long a
                 caller waits for an id while the scheduler is busy
     first-gen   submission -> first generation event (daemon clock)
     completion  submission -> terminal state (daemon clock)

   plus end-to-end throughput.  Written to BENCH_serve.json. *)
let serve options =
  let module Job = Mm_serve.Job in
  let module Protocol = Mm_serve.Protocol in
  let module Server = Mm_serve.Server in
  let module Client = Mm_serve.Client in
  Format.printf "@.=== serve: daemon throughput and latency ===@.";
  let n_jobs =
    match options.runs with
    | Some n -> max 1 n
    | None -> if options.quick then 100 else 200
  in
  let job_options =
    {
      Job.default_options with
      generations = (if options.quick then 6 else 15);
      population = 8;
      restarts = 1;
    }
  in
  let base =
    let d = Filename.get_temp_dir_name () in
    if String.length d < 60 then d else "/tmp"
  in
  let dir = Filename.temp_file ~temp_dir:base "bench-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let socket = Filename.concat dir "bench.sock" in
  let daemon =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.default_config with
            Server.socket_path = socket;
            state_dir = Filename.concat dir "state";
            pool_jobs = 1;
            checkpoint_every = 10;
          })
  in
  let rec wait_for_socket n =
    if Sys.file_exists socket then ()
    else if n = 0 then failwith "serve: daemon socket never appeared"
    else (
      Unix.sleepf 0.02;
      wait_for_socket (n - 1))
  in
  wait_for_socket 250;
  let specs =
    Array.init 6 (fun i -> Mm_io.Codec.spec_to_string (Random_system.mul (i + 1)))
  in
  let client = Client.connect ~socket in
  let admission = Array.make n_jobs 0.0 in
  let ids = Array.make n_jobs "" in
  let wall_start = Unix.gettimeofday () in
  for i = 0 to n_jobs - 1 do
    let spec_text = specs.(i mod Array.length specs) in
    let req =
      Protocol.Submit
        {
          spec_text;
          options = { job_options with Job.seed = 1000 + i };
          nonce = None;
        }
    in
    let t0 = Unix.gettimeofday () in
    match Client.request client req with
    | Ok (Protocol.Accepted view) ->
      admission.(i) <- Unix.gettimeofday () -. t0;
      ids.(i) <- view.Protocol.v_id
    | Ok _ | Error _ -> failwith "serve: submission refused"
  done;
  (* Watch each job to its terminal state; the final views carry every
     daemon-side timestamp the latency distributions need. *)
  let views =
    Array.map
      (fun id ->
        match Client.watch client id ~on_event:(fun _ -> ()) with
        | Ok view when view.Protocol.v_state = Job.Completed -> view
        | Ok view ->
          failwith
            (Printf.sprintf "serve: %s ended %s" id
               (Job.state_to_string view.Protocol.v_state))
        | Error e -> failwith ("serve: watch " ^ id ^ ": " ^ e))
      ids
  in
  let wall = Unix.gettimeofday () -. wall_start in
  (match Client.request client Protocol.Shutdown with
  | Ok Protocol.Done -> ()
  | Ok _ | Error _ -> failwith "serve: shutdown refused");
  Client.close client;
  Domain.join daemon;
  let rec rmtree path =
    if Sys.is_directory path then (
      Array.iter (fun f -> rmtree (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path
  in
  rmtree dir;
  let stamp (view : Protocol.job_view) field =
    match field view with
    | Some t -> t -. view.Protocol.v_submitted_at
    | None -> failwith "serve: completed job missing a timestamp"
  in
  let first_gen =
    Array.map (fun v -> stamp v (fun v -> v.Protocol.v_first_generation_at)) views
  in
  let completion =
    Array.map (fun v -> stamp v (fun v -> v.Protocol.v_finished_at)) views
  in
  let percentile samples q =
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))
  in
  let ms v = 1000.0 *. v in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%d submissions over %d spec sizes, wall %.2f s, %.1f jobs/s"
           n_jobs (Array.length specs) wall (float_of_int n_jobs /. wall))
      ~columns:[ "latency"; "p50 (ms)"; "p90 (ms)"; "p99 (ms)" ]
  in
  let row label samples =
    Table.add_row t
      [
        label;
        Printf.sprintf "%.2f" (ms (percentile samples 0.50));
        Printf.sprintf "%.2f" (ms (percentile samples 0.90));
        Printf.sprintf "%.2f" (ms (percentile samples 0.99));
      ]
  in
  row "admission (client round-trip)" admission;
  row "first generation" first_gen;
  row "completion" completion;
  Table.print t;
  let json_path = "BENCH_serve.json" in
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"serve\",\n";
  p "  \"quick\": %b,\n" options.quick;
  p "  \"jobs\": %d,\n" n_jobs;
  p "  \"spec_sizes\": %d,\n" (Array.length specs);
  p "  \"wall_seconds\": %.3f,\n" wall;
  p "  \"throughput_jobs_per_second\": %.3f,\n" (float_of_int n_jobs /. wall);
  let field name samples last =
    p "  \"%s_p50_ms\": %.3f,\n" name (ms (percentile samples 0.50));
    p "  \"%s_p90_ms\": %.3f,\n" name (ms (percentile samples 0.90));
    p "  \"%s_p99_ms\": %.3f%s\n" name (ms (percentile samples 0.99))
      (if last then "" else ",")
  in
  field "admission" admission false;
  field "first_generation" first_gen false;
  field "completion" completion true;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." json_path

(* --- Fleet Monte Carlo throughput ----------------------------------------------- *)

(* Devices/second of the fleet engine across domain counts and batch
   sizes, plus an in-bench check of its central claim: the full JSON
   report (and so every percentile bit) is identical at any jobs/batch
   combination.  Written to BENCH_fleet.json. *)
let fleet options =
  Format.printf "@.== Fleet Monte Carlo: devices/second and bit-invariance ==@.";
  let spec = Smartphone.spec () in
  let config = { Synthesis.default_config with Synthesis.ga = ga_config options } in
  let result = Synthesis.run ~config ~spec ~seed:1 () in
  let omsm = Spec.omsm spec in
  let mode_powers = result.Synthesis.eval.Fitness.mode_powers in
  let devices = if options.quick then 20_000 else 100_000 in
  let horizon = 1_000.0 in
  let run ~jobs ~batch =
    let pool =
      if jobs > 1 then Some (Mm_parallel.Pool.create ~domains:jobs ()) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Mm_parallel.Pool.shutdown pool)
      (fun () ->
        let started = Unix.gettimeofday () in
        let fleet =
          Mm_energy.Fleet_sim.run ?pool ~batch ~horizon ~devices ~omsm ~mode_powers
            ~seed:7 ()
        in
        (fleet, Unix.gettimeofday () -. started))
  in
  let cores = Domain.recommended_domain_count () in
  let job_counts = List.sort_uniq compare [ 1; min 2 cores; min 4 cores; min 8 cores ] in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "%d devices, horizon %.0f s, smartphone best design" devices
           horizon)
      ~columns:[ "jobs"; "batch"; "wall (s)"; "devices/s" ]
  in
  let reference = ref None in
  let rows = ref [] in
  let measure ~jobs ~batch =
    let fleet, wall = run ~jobs ~batch in
    let json = Mm_energy.Fleet_sim.to_json fleet in
    (match !reference with
    | None -> reference := Some json
    | Some r ->
      if not (String.equal r json) then begin
        Printf.eprintf "fleet: report at jobs=%d batch=%d differs from jobs=1\n%!" jobs
          batch;
        exit 1
      end);
    let rate = float_of_int devices /. wall in
    Table.add_row t
      [
        string_of_int jobs; string_of_int batch; Printf.sprintf "%.2f" wall;
        Printf.sprintf "%.0f" rate;
      ];
    rows := (jobs, batch, wall, rate) :: !rows
  in
  List.iter (fun jobs -> measure ~jobs ~batch:4096) job_counts;
  List.iter (fun batch -> measure ~jobs:(min 4 cores) ~batch) [ 256; 1024; 16384 ];
  Table.print t;
  Format.printf "reports identical across every jobs/batch combination@.";
  let json_path = "BENCH_fleet.json" in
  let oc = open_out json_path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"experiment\": \"fleet\",\n";
  p "  \"quick\": %b,\n" options.quick;
  p "  \"devices\": %d,\n" devices;
  p "  \"horizon_s\": %.1f,\n" horizon;
  p "  \"bit_identical\": true,\n";
  let rows = List.rev !rows in
  let n_rows = List.length rows in
  List.iteri
    (fun i (jobs, batch, wall, rate) ->
      p "  \"jobs%d_batch%d_wall_s\": %.3f,\n" jobs batch wall;
      p "  \"jobs%d_batch%d_devices_per_s\": %.0f%s\n" jobs batch rate
        (if i = n_rows - 1 then "" else ","))
    rows;
  p "}\n";
  close_out oc;
  Format.printf "wrote %s@." json_path

(* --- Driver -------------------------------------------------------------------- *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse options selected = function
    | [] -> (options, List.rev selected)
    | "--quick" :: rest -> parse { options with quick = true } selected rest
    | "--gate" :: rest -> parse { options with gate = true } selected rest
    | "--runs" :: n :: rest ->
      parse { options with runs = Some (int_of_string n) } selected rest
    | name :: rest -> parse options (name :: selected) rest
  in
  let options, selected = parse { runs = None; quick = false; gate = false } [] args in
  let selected =
    if selected = [] then
      [
        "table1"; "table2"; "table3"; "ablation"; "parallel"; "eval"; "soak";
        "serve"; "fleet"; "kernels";
      ]
    else selected
  in
  let total_start = Sys.time () in
  List.iter
    (fun name ->
      match name with
      | "table1" -> table1 options
      | "table2" -> table2 options
      | "table3" -> table3 options
      | "ablation" -> ablation options
      | "ablation-f" -> ablation_dvs_strategy options
      | "parallel" -> parallel options
      | "eval" -> eval_kernel options
      | "soak" -> soak options
      | "serve" -> serve options
      | "fleet" -> fleet options
      | "kernels" -> kernels options
      | other ->
        Format.printf
          "unknown experiment %S (expected \
           table1|table2|table3|ablation|parallel|eval|soak|serve|fleet|kernels)@."
          other;
        exit 1)
    selected;
  Format.printf "total bench CPU time: %.1f s@." (Sys.time () -. total_start)
